#include "serve/compile_service.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <map>
#include <stdexcept>
#include <tuple>
#include <utility>

#include "core/cancel.h"
#include "core/failpoint.h"
#include "core/thread_pool.h"
#include "engines/registry.h"
#include "obs/trace.h"
#include "serve/request_queue.h"
#include "serve/store/disk_store.h"
#include "serve/store/spill_codec.h"
#include "serve/store/tinylfu.h"

namespace respect::serve {
namespace {

using SteadyClock = std::chrono::steady_clock;

/// Stable fingerprint of everything in CompilerOptions that can change a
/// CompileResult.  weights_path contributes as a path string: the key covers
/// the compiler's configuration, not the bytes of the file — swap weights
/// under traffic through ReplaceRl, which versions the snapshot.
graph::CanonicalHash FingerprintOptions(const CompilerOptions& options) {
  graph::CanonicalHasher h;
  h.Update("respect-compiler-options-v1");
  h.Update(options.net.hidden_dim);
  h.Update(static_cast<int>(options.net.masking));
  h.Update(options.net.init_seed);
  h.Update(options.net.embedding.include_topology);
  h.Update(options.net.embedding.include_ids);
  h.Update(options.net.embedding.include_memory);
  h.Update(options.weights_path);
  h.Update(options.exact_max_expansions);
  h.Update(std::bit_cast<std::uint64_t>(options.exact_time_limit_seconds));
  h.Update(options.compiler.num_stages);
  h.Update(options.compiler.refinement_rounds);
  h.Update(options.compiler.compile_passes);
  h.Update(options.quantize);
  return h.Finish();
}

std::unique_ptr<core::ThreadPool> MakeServicePool(
    const ServiceOptions& options) {
  const int num_threads = options.num_threads < 1
                              ? core::ThreadPool::DefaultThreadCount()
                              : options.num_threads;
  if (options.fifo_queue) {
    return std::make_unique<core::ThreadPool>(num_threads);
  }
  RequestQueue::Options queue_options;
  queue_options.aging_seconds = options.queue_aging_seconds;
  queue_options.max_batch_inflight = options.max_batch_inflight;
  queue_options.max_lane_depth = options.max_lane_depth;
  queue_options.default_tenant_weight = options.default_tenant_weight;
  queue_options.tenant_weights = options.tenant_weights;
  queue_options.default_tenant_quota = options.default_tenant_quota;
  queue_options.tenant_quotas = options.tenant_quotas;
  return std::make_unique<core::ThreadPool>(
      num_threads, std::make_unique<RequestQueue>(queue_options));
}

}  // namespace

void CompileService::LatencyWindow::Configure(std::size_t capacity,
                                              obs::Histogram* histogram) {
  values_.reserve(std::max<std::size_t>(1, capacity));
  capacity_limit_ = std::max<std::size_t>(1, capacity);
  histogram_ = histogram;
}

void CompileService::LatencyWindow::Record(double seconds) {
  if (histogram_ != nullptr) histogram_->Observe(seconds);
  const std::lock_guard<std::mutex> lock(mutex_);
  if (values_.size() < capacity_limit_) {
    values_.push_back(seconds);
    next_ = values_.size() % capacity_limit_;
    return;
  }
  values_[next_] = seconds;
  next_ = (next_ + 1) % capacity_limit_;
}

void CompileService::LatencyWindow::Percentiles(double& p50,
                                                double& p99) const {
  std::vector<double> window;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    window = values_;
  }
  std::sort(window.begin(), window.end());
  p50 = PercentileSorted(window, 0.50);
  p99 = PercentileSorted(window, 0.99);
}

CompileService::CompileService(const CompilerOptions& compiler_options,
                               const ServiceOptions& options)
    : compiler_(compiler_options),
      options_fingerprint_(FingerprintOptions(compiler_options)) {
  const int num_shards = std::max(1, options.cache_shards);
  per_shard_capacity_ =
      (options.cache_capacity + num_shards - 1) / num_shards;
  shards_.reserve(num_shards);
  for (int i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  if (options.cache_ttl_seconds > 0.0) {
    has_ttl_ = true;
    memory_ttl_ = std::chrono::duration_cast<SteadyClock::duration>(
        std::chrono::duration<double>(options.cache_ttl_seconds));
  }
  if (options.lfu_admission && options.cache_capacity > 0) {
    admission_ =
        std::make_unique<store::TinyLfuAdmission>(options.cache_capacity);
  }
  batch_decode_ = options.batch_decode;
  default_solve_budget_seconds_ = options.default_solve_budget_seconds;
  deadline_admission_ = options.deadline_admission;
  breaker_options_.failure_threshold = options.breaker_failure_threshold;
  breaker_options_.open_seconds = options.breaker_open_seconds;
  breaker_options_.clock = options.breaker_clock;
  // Resolve the fallback chain to canonical names now so a typo fails the
  // constructor, not a degraded request under traffic.  Duplicates collapse
  // (an alias and its canonical name are one candidate).
  fallback_chain_.reserve(options.fallback_chain.size());
  for (const std::string& name : options.fallback_chain) {
    const std::string_view canonical =
        engines::EngineRegistry::Global().Resolve(EngineRef(name)).name;
    if (std::find(fallback_chain_.begin(), fallback_chain_.end(), canonical) ==
        fallback_chain_.end()) {
      fallback_chain_.push_back(canonical);
    }
  }
  if (!options.cache_dir.empty()) {
    store::DiskStoreOptions store_options;
    store_options.directory = options.cache_dir;
    store_options.ttl_seconds = options.cache_ttl_seconds;
    store_options.registry = &registry_;  // one exposition page per shard
    store_ = std::make_unique<store::DiskStore>(store_options);
  }
  pool_ = MakeServicePool(options);
  solve_latency_.Configure(options.latency_window, &solve_hist_);
  for (std::size_t lane = 0; lane < kNumPriorityLanes; ++lane) {
    lane_wait_[lane].Configure(
        options.latency_window,
        &registry_.GetHistogram(
            "respect_serve_lane_" +
                std::string(PriorityName(static_cast<Priority>(lane))) +
                "_wait_seconds",
            "Queue wait of started requests (seconds)"));
  }
}

CompileService::LaneCounters CompileService::MakeLaneCounters(
    std::size_t lane) {
  const std::string stem =
      "respect_serve_lane_" +
      std::string(PriorityName(static_cast<Priority>(lane))) + "_";
  return LaneCounters{
      registry_.GetCounter(stem + "enqueued_total",
                           "Submits routed to this lane"),
      registry_.GetCounter(stem + "started_total",
                           "Requests that began their compile on a worker"),
      registry_.GetCounter(stem + "expired_total",
                           "Requests failed fast with DeadlineExceeded"),
      registry_.GetCounter(stem + "shed_total",
                           "Requests refused at admission with Overloaded")};
}

// The pool joins before the members the queued tasks reference are torn
// down; every outstanding Ticket is resolved by then (queued entries run or
// expire, never vanish).
CompileService::~CompileService() { pool_.reset(); }

std::size_t CompileService::LaneIndex(Priority priority) {
  const auto index = static_cast<std::size_t>(static_cast<int>(priority));
  return index < kNumPriorityLanes ? index : kNumPriorityLanes - 1;
}

CompileService::RequestKey CompileService::MakeKey(
    const graph::Dag& dag, int num_stages, const EngineRef& engine,
    std::string_view profile_name) const {
  const engines::EngineRegistration& registration =
      engines::EngineRegistry::Global().Resolve(engine);
  std::optional<tpu::DeviceProfile> profile = tpu::FindProfile(profile_name);
  if (!profile) {
    throw std::invalid_argument("unknown device profile: \"" +
                                std::string(profile_name) + "\"");
  }
  graph::CanonicalHasher h;
  h.Update("respect-serve-key-v1");
  h.Update(registration.name);  // canonical, so alias and name share a key
  h.Update(num_stages);
  h.Update(options_fingerprint_.hi);
  h.Update(options_fingerprint_.lo);
  std::uint64_t rl_version = 0;
  if (registration.uses_rl) {
    rl_version = compiler_.RlVersion();
    h.Update(rl_version);
  }
  // The default profile folds NOTHING in — keys (and thus spill files)
  // from before profiles existed stay reachable.  Any other profile's
  // fingerprint splits the key space: the same DAG compiled for two fleets
  // is two cache entries.
  const graph::CanonicalHash profile_fp = profile->Fingerprint();
  if (!profile->IsDefault()) {
    h.Update("profile");
    h.Update(profile_fp.hi);
    h.Update(profile_fp.lo);
  }
  const graph::CanonicalHash dag_hash = graph::HashDag(dag);
  h.Update(dag_hash.hi);
  h.Update(dag_hash.lo);
  return RequestKey{h.Finish(), registration.uses_rl, rl_version,
                    registration.name, *std::move(profile), profile_fp};
}

CompileService::Shard& CompileService::ShardFor(
    const graph::CanonicalHash& hash) {
  // Shard on hi: the per-shard maps hash on lo (CanonicalHash::Hasher), so
  // sharding on lo too would leave every map with only 1/num_shards of its
  // buckets reachable.
  return *shards_[hash.hi % shards_.size()];
}

void CompileService::InsertLocked(
    Shard& shard, const RequestKey& key, ResultPtr result,
    std::optional<std::chrono::steady_clock::time_point> expires_at) {
  if (per_shard_capacity_ == 0) return;
  CacheEntry entry{key.hash, std::move(result), key.rl_dependent};
  if (has_ttl_) {
    entry.has_ttl = true;
    entry.expires_at = SteadyClock::now() + memory_ttl_;
    if (expires_at && *expires_at < entry.expires_at) {
      entry.expires_at = *expires_at;
    }
  } else if (expires_at) {
    // No service-wide TTL, but the entry itself carries one (a spill from
    // a TTL-configured producer sharing the cache dir): honor it.
    entry.has_ttl = true;
    entry.expires_at = *expires_at;
  }
  if (const auto it = shard.entries.find(key.hash);
      it != shard.entries.end()) {
    // Reached by CachePolicy::kRefresh overwriting a resident entry, and
    // defensively if a flight owner ever races an insert.  The TTL clock
    // restarts: a refresh is a brand-new result.
    *it->second = std::move(entry);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  if (admission_ != nullptr && shard.entries.size() >= per_shard_capacity_) {
    // TinyLFU admission: the cold key only displaces the LRU victim when
    // it is at least as frequent — a one-hit-wonder scan bounces off a hot
    // entry instead of flushing it.  (Ties admit, so an all-cold cache
    // still behaves like plain LRU.)
    if (!admission_->Admit(key.hash, shard.lru.back().key)) {
      admission_rejected_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
  shard.lru.push_front(std::move(entry));
  shard.entries.emplace(key.hash, shard.lru.begin());
  while (shard.entries.size() > per_shard_capacity_) {
    shard.entries.erase(shard.lru.back().key);
    shard.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

bool CompileService::DropIfExpiredLocked(Shard& shard,
                                         std::list<CacheEntry>::iterator it) {
  if (!it->has_ttl || SteadyClock::now() <= it->expires_at) return false;
  shard.entries.erase(it->key);
  shard.lru.erase(it);
  ttl_expired_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

CompileService::ResultPtr CompileService::TryCached(const RequestKey& key) {
  OBS_SPAN("serve.cache_probe");
  if (admission_ != nullptr) admission_->RecordAccess(key.hash);
  Shard& shard = ShardFor(key.hash);
  const std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.entries.find(key.hash);
  if (it == shard.entries.end()) return nullptr;
  if (DropIfExpiredLocked(shard, it->second)) return nullptr;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second->result;
}

CircuitBreaker& CompileService::BreakerFor(std::string_view engine) {
  const std::lock_guard<std::mutex> lock(breaker_mutex_);
  auto it = breakers_.find(engine);
  if (it == breakers_.end()) {
    it = breakers_
             .emplace(engine, std::make_unique<CircuitBreaker>(breaker_options_))
             .first;
  }
  return *it->second;
}

CompileService::ResultPtr CompileService::SolveCold(
    const graph::Dag& dag, int num_stages, const RequestKey& key,
    const CompileRequest& params, double& solve_seconds,
    SolveOutcome& outcome) {
  // Candidate chain: the preferred engine, then each configured fallback
  // (minus the preferred engine itself — already first).
  std::vector<std::string_view> candidates;
  candidates.reserve(1 + fallback_chain_.size());
  candidates.push_back(key.engine_name);
  for (const std::string_view name : fallback_chain_) {
    if (name != key.engine_name) candidates.push_back(name);
  }

  // Per-attempt budget: every candidate gets a fresh one — a fallback must
  // not inherit the few microseconds the preferred engine left behind.
  const double budget = params.solve_budget_seconds > 0.0
                            ? params.solve_budget_seconds
                            : default_solve_budget_seconds_;

  OBS_SPAN("serve.solve");
  std::exception_ptr first_failure;
  bool first_was_budget = false;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const std::string_view engine = candidates[i];
    const bool last = i + 1 == candidates.size();
    if (params.deadline && SteadyClock::now() > *params.deadline) {
      // The request's own deadline passed between attempts: stop walking,
      // the caller's waiter is already (or about to be) past caring.
      deadline_expired_.fetch_add(1, std::memory_order_relaxed);
      failures_.fetch_add(1, std::memory_order_relaxed);
      throw DeadlineExceeded(
          "compile request deadline expired while walking the fallback "
          "chain");
    }
    CircuitBreaker* breaker = breaker_options_.failure_threshold > 0
                                  ? &BreakerFor(engine)
                                  : nullptr;
    if (breaker != nullptr && !breaker->Allow() && !last) {
      // Open breaker: skip the sick engine straight to its fallback.  The
      // last candidate is always attempted — short-circuiting it would turn
      // "sick engine" into "no answer at all".
      obs::RecordInstant("serve.breaker_short_circuit", engine.data(),
                         static_cast<std::uint32_t>(engine.size()));
      continue;
    }
    // Engine names borrow from the registry (process lifetime), so the
    // span's detail pointer stays valid for any later drain.
    OBS_SPAN_DETAIL("serve.attempt", engine.data(), engine.size());
    try {
      const core::CancelToken cancel =
          budget > 0.0 ? core::CancelToken::WithBudget(budget)
                       : core::CancelToken();
      const auto start = SteadyClock::now();
      auto result = std::make_shared<const CompileResult>(
          compiler_.Compile(dag, num_stages, engine, key.profile, cancel));
      solve_seconds =
          std::chrono::duration<double>(SteadyClock::now() - start).count();
      solve_latency_.Record(solve_seconds);
      // Load-compute-store EWMA: a lost race skews the admission estimate
      // by one sample, which it tolerates by construction.
      const double prev = ewma_solve_seconds_.load(std::memory_order_relaxed);
      ewma_solve_seconds_.store(
          prev == 0.0 ? solve_seconds : 0.8 * prev + 0.2 * solve_seconds,
          std::memory_order_relaxed);
      if (breaker != nullptr) breaker->RecordSuccess();
      outcome.engine_used = engine;
      outcome.degraded = engine != key.engine_name;
      if (outcome.degraded) {
        degraded_served_.fetch_add(1, std::memory_order_relaxed);
      }
      return result;
    } catch (const core::CancelledError&) {
      budget_blown_.fetch_add(1, std::memory_order_relaxed);
      if (breaker != nullptr) breaker->RecordFailure();
      if (first_failure == nullptr) {
        first_failure = std::current_exception();
        first_was_budget = true;
      }
    } catch (...) {
      if (breaker != nullptr) breaker->RecordFailure();
      if (first_failure == nullptr) first_failure = std::current_exception();
    }
  }

  fallback_exhausted_.fetch_add(1, std::memory_order_relaxed);
  failures_.fetch_add(1, std::memory_order_relaxed);
  if (first_was_budget) {
    // The chain died on budgets: surface the typed error the serving
    // contract promises, not the internal cancellation type.
    deadline_expired_.fetch_add(1, std::memory_order_relaxed);
    throw DeadlineExceeded(
        "solve budget exhausted across the engine chain (preferred \"" +
        std::string(key.engine_name) + "\" plus " +
        std::to_string(candidates.size() - 1) + " fallback(s))");
  }
  std::rethrow_exception(first_failure);
}

void CompileService::ExecuteCached(const graph::Dag& dag,
                                   const CompileRequest& params,
                                   const RequestKey& key, bool record_access,
                                   CompileResponse& response) {
  const int num_stages = params.num_stages;
  if (record_access && admission_ != nullptr) {
    admission_->RecordAccess(key.hash);
  }
  Shard& shard = ShardFor(key.hash);

  std::shared_ptr<Flight> flight;
  bool owner = false;
  {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    if (const auto it = shard.entries.find(key.hash);
        it != shard.entries.end()) {
      if (!DropIfExpiredLocked(shard, it->second)) {
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
        hits_.fetch_add(1, std::memory_order_relaxed);
        response.result = it->second->result;
        response.outcome = CacheOutcome::kHit;
        return;
      }
      // Expired: fall through as a miss (the disk copy, if any, carries
      // the same TTL and will be dropped by the store's own check).
    }
    if (const auto it = shard.flights.find(key.hash);
        it != shard.flights.end()) {
      flight = it->second;
      single_flight_waits_.fetch_add(1, std::memory_order_relaxed);
    } else {
      flight = std::make_shared<Flight>();
      flight->future = flight->promise.get_future().share();
      shard.flights.emplace(key.hash, flight);
      owner = true;
    }
  }

  if (!owner) {
    response.result = flight->future.get();  // rethrows the owner's failure
    response.outcome = CacheOutcome::kCollapsed;
    if (flight->degraded) {  // written before set_value; get() ordered it
      response.degraded = true;
      response.engine_name = flight->served_by;
    }
    return;
  }

  // The flight owner probes the persistent tier before paying a solve —
  // the one synchronous disk read on the request path.  Collapsed waiters
  // share the disk hit exactly as they would a solve.
  if (store_ != nullptr) {
    OBS_SPAN("serve.disk_probe");
    std::int64_t disk_expiry_ms = 0;
    if (ResultPtr from_disk = store_->Probe(key.hash, &disk_expiry_ms)) {
      disk_hits_.fetch_add(1, std::memory_order_relaxed);
      {
        const std::lock_guard<std::mutex> lock(shard.mutex);
        InsertLocked(shard, key, from_disk,
                     PromoteExpiry(disk_expiry_ms));  // subject to admission
        shard.flights.erase(key.hash);
      }
      flight->promise.set_value(from_disk);
      response.result = std::move(from_disk);
      response.outcome = CacheOutcome::kDiskHit;
      return;
    }
  }

  // Both local tiers missed: in fleet mode, ask peers for their spill
  // envelope before paying an engine solve.  A verified fetch settles the
  // flight exactly like a disk hit; any failure falls through to the solve.
  if (TryPeerWarm(key, shard, flight, response)) return;

  misses_.fetch_add(1, std::memory_order_relaxed);
  try {
    double solve_seconds = 0.0;
    SolveOutcome outcome;
    ResultPtr result =
        SolveCold(dag, num_stages, key, params, solve_seconds, outcome);
    if (!outcome.degraded) {
      {
        const std::lock_guard<std::mutex> lock(shard.mutex);
        InsertLocked(shard, key, result);
        shard.flights.erase(key.hash);
      }
      flight->promise.set_value(result);
      EnqueueWriteback(key, result);
    } else {
      // A fallback answered.  Cache (and spill) the result under the
      // fallback engine's OWN key — the preferred engine's key must never
      // serve a degraded result once the engine recovers.  The flight under
      // the preferred key still resolves so collapsed waiters share this
      // answer, tagged degraded via the flight's provenance fields.
      const RequestKey used_key = MakeKey(
          dag, num_stages, EngineRef(std::string(outcome.engine_used)),
          key.profile.name);
      Shard& used_shard = ShardFor(used_key.hash);
      {
        const std::lock_guard<std::mutex> lock(used_shard.mutex);
        InsertLocked(used_shard, used_key, result);
      }
      {
        const std::lock_guard<std::mutex> lock(shard.mutex);
        shard.flights.erase(key.hash);
      }
      flight->degraded = true;
      flight->served_by = outcome.engine_used;
      flight->promise.set_value(result);
      EnqueueWriteback(used_key, result);
      response.degraded = true;
      response.engine_name = outcome.engine_used;
    }
    response.result = std::move(result);
    response.outcome = CacheOutcome::kMiss;
    response.solve_seconds = solve_seconds;
  } catch (...) {
    {
      const std::lock_guard<std::mutex> lock(shard.mutex);
      shard.flights.erase(key.hash);
    }
    flight->promise.set_exception(std::current_exception());
    throw;
  }
}

CompileResponse CompileService::Execute(
    const graph::Dag& dag, const CompileRequest& params,
    const std::optional<RequestKey>& precomputed) {
  const RequestKey key = precomputed ? *precomputed
                                     : MakeKey(dag, params.num_stages,
                                               params.engine, params.profile);
  CompileResponse response;
  response.engine_name = key.engine_name;
  response.requested_engine = key.engine_name;
  response.key_hex = key.hash.ToHex();
  switch (params.cache_policy) {
    case CachePolicy::kUse:
      // A precomputed key means the batch path probed (and recorded) this
      // request in TryCached already — don't double-count it in the
      // admission sketch.
      ExecuteCached(dag, params, key,
                    /*record_access=*/!precomputed.has_value(), response);
      break;
    case CachePolicy::kBypass: {
      // Forced fresh solve, cache untouched; not counted as a miss (misses
      // are cache-lookup outcomes, and this never looked).
      bypasses_.fetch_add(1, std::memory_order_relaxed);
      SolveOutcome outcome;
      response.result = SolveCold(dag, params.num_stages, key, params,
                                  response.solve_seconds, outcome);
      response.outcome = CacheOutcome::kBypass;
      if (outcome.degraded) {
        response.degraded = true;
        response.engine_name = outcome.engine_used;
      }
      break;
    }
    case CachePolicy::kRefresh: {
      refreshes_.fetch_add(1, std::memory_order_relaxed);
      SolveOutcome outcome;
      ResultPtr result = SolveCold(dag, params.num_stages, key, params,
                                   response.solve_seconds, outcome);
      if (!outcome.degraded) {
        {
          Shard& shard = ShardFor(key.hash);
          const std::lock_guard<std::mutex> lock(shard.mutex);
          InsertLocked(shard, key, result);
        }
        EnqueueWriteback(key, result);  // a refresh renews the disk copy too
      } else {
        // A degraded refresh must not overwrite the preferred engine's
        // entry with a fallback result — it lands under the fallback
        // engine's key, exactly like the kUse path.
        const RequestKey used_key = MakeKey(
            dag, params.num_stages, EngineRef(std::string(outcome.engine_used)),
            key.profile.name);
        {
          Shard& used_shard = ShardFor(used_key.hash);
          const std::lock_guard<std::mutex> lock(used_shard.mutex);
          InsertLocked(used_shard, used_key, result);
        }
        EnqueueWriteback(used_key, result);
        response.degraded = true;
        response.engine_name = outcome.engine_used;
      }
      response.result = std::move(result);
      response.outcome = CacheOutcome::kRefresh;
      break;
    }
  }
  return response;
}

void CompileService::EnqueueWriteback(const RequestKey& key,
                                      ResultPtr result) {
  if (store_ == nullptr) return;
  {
    const std::lock_guard<std::mutex> lock(writeback_mutex_);
    ++pending_writebacks_;
  }
  store::SpillMeta meta;
  meta.key = key.hash;
  meta.rl_dependent = key.rl_dependent;
  meta.rl_version = key.rl_version;
  meta.engine_name = std::string(key.engine_name);
  meta.profile_name = key.profile.name;
  meta.profile_fingerprint = key.profile_fingerprint;
  // Normal lane: writeback must not wait out a capped batch flood, and
  // must not delay interactive solves either.  Put reports I/O failures
  // through the store's own counters; anything that still throws (an
  // injected fault, an unexpected error) is counted service-side — the
  // spill is lost but never silently, and the decrement always runs so
  // FlushStore cannot hang on a failed write.
  const std::uint64_t trace_id = obs::CurrentTraceId();  // the request's flow
  core::ThreadPool::TaskAttrs attrs;
  attrs.lane = static_cast<int>(LaneIndex(Priority::kNormal));
  attrs.trace_id = trace_id;
  pool_->Submit(
      [this, meta = std::move(meta), result = std::move(result), trace_id] {
        const obs::ScopedTraceId trace_scope(trace_id);
        OBS_SPAN("serve.writeback");
        try {
          RESPECT_FAILPOINT("serve.writeback");
          store_->Put(meta, result);
        } catch (...) {
          writeback_errors_.fetch_add(1, std::memory_order_relaxed);
        }
        {
          const std::lock_guard<std::mutex> lock(writeback_mutex_);
          --pending_writebacks_;
        }
        writeback_cv_.notify_all();
      },
      std::move(attrs));
}

void CompileService::FlushStore() {
  std::unique_lock<std::mutex> lock(writeback_mutex_);
  writeback_cv_.wait(lock, [this] { return pending_writebacks_ == 0; });
}

std::size_t CompileService::CompactStore() {
  return store_ != nullptr ? store_->Compact(compiler_.RlVersion()) : 0;
}

std::optional<std::chrono::steady_clock::time_point>
CompileService::PromoteExpiry(std::int64_t expires_at_unix_ms) {
  if (expires_at_unix_ms == 0) return std::nullopt;
  const auto remaining = std::chrono::system_clock::time_point(
                             std::chrono::milliseconds(expires_at_unix_ms)) -
                         std::chrono::system_clock::now();
  return SteadyClock::now() +
         std::chrono::duration_cast<SteadyClock::duration>(remaining);
}

std::shared_ptr<const CompileService::PeerFetchFn>
CompileService::PeerFetchSnapshot() const {
  const std::lock_guard<std::mutex> lock(peer_fetch_mutex_);
  return peer_fetch_;
}

void CompileService::SetPeerFetch(PeerFetchFn fetch) {
  std::shared_ptr<const PeerFetchFn> installed;
  if (fetch) {
    installed = std::make_shared<const PeerFetchFn>(std::move(fetch));
  }
  const std::lock_guard<std::mutex> lock(peer_fetch_mutex_);
  peer_fetch_ = std::move(installed);
}

std::optional<std::string> CompileService::ExportSpill(
    const graph::CanonicalHash& key) {
  return store_ != nullptr ? store_->ExportRaw(key) : std::nullopt;
}

bool CompileService::ImportSpill(const graph::CanonicalHash& key,
                                 std::string_view bytes) {
  return store_ != nullptr && store_->ImportRaw(key, bytes);
}

bool CompileService::TryPeerWarm(const RequestKey& key, Shard& shard,
                                 const std::shared_ptr<Flight>& flight,
                                 CompileResponse& response) {
  const std::shared_ptr<const PeerFetchFn> fetch = PeerFetchSnapshot();
  if (fetch == nullptr) return false;
  OBS_SPAN("serve.peer_fetch");
  peer_fetches_.fetch_add(1, std::memory_order_relaxed);
  std::string bytes;
  try {
    bytes = (*fetch)(key.hash);
  } catch (...) {
    // A dead or slow peer degrades to a local solve — never a request
    // failure.
    peer_fetch_failures_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  if (bytes.empty()) return false;  // clean peer miss
  const std::optional<store::SpillEnvelope> envelope =
      store::TryDecodeSpillEnvelope(bytes);
  const bool usable =
      envelope && envelope->meta.key == key.hash &&
      (envelope->expires_at_unix_ms == 0 ||
       std::chrono::system_clock::now() <
           std::chrono::system_clock::time_point(
               std::chrono::milliseconds(envelope->expires_at_unix_ms)));
  if (!usable) {
    // Corrupt, mismatched, or expired peer bytes: counted, discarded, and
    // the request pays its own solve — a lying peer cannot poison a cache.
    peer_fetch_failures_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  if (store_ != nullptr) {
    store_->ImportRaw(key.hash, bytes);  // durable warmth; refusal is fine
  }
  peer_hits_.fetch_add(1, std::memory_order_relaxed);
  ResultPtr result = envelope->result;
  {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    InsertLocked(shard, key, result,
                 PromoteExpiry(envelope->expires_at_unix_ms));
    shard.flights.erase(key.hash);
  }
  flight->promise.set_value(result);
  response.result = std::move(result);
  response.outcome = CacheOutcome::kPeerHit;
  return true;
}

graph::CanonicalHash CompileService::KeyFor(
    const CompileRequest& request) const {
  return MakeKey(request.dag, request.num_stages, request.engine,
                 request.profile)
      .hash;
}

std::optional<CompileResponse> CompileService::TryServeLocal(
    const CompileRequest& request) {
  if (request.cache_policy != CachePolicy::kUse) return std::nullopt;
  const RequestKey key = MakeKey(request.dag, request.num_stages,
                                 request.engine, request.profile);
  CompileResponse response;
  response.engine_name = key.engine_name;
  response.requested_engine = key.engine_name;
  response.key_hex = key.hash.ToHex();
  // Note: a miss here followed by a full Compile records the admission
  // access twice — a one-sample skew the frequency sketch tolerates.
  if (ResultPtr cached = TryCached(key)) {
    response.result = std::move(cached);
    response.outcome = CacheOutcome::kHit;
    return response;
  }
  if (store_ != nullptr) {
    std::int64_t disk_expiry_ms = 0;
    if (ResultPtr from_disk = store_->Probe(key.hash, &disk_expiry_ms)) {
      disk_hits_.fetch_add(1, std::memory_order_relaxed);
      Shard& shard = ShardFor(key.hash);
      {
        const std::lock_guard<std::mutex> lock(shard.mutex);
        InsertLocked(shard, key, from_disk, PromoteExpiry(disk_expiry_ms));
      }
      response.result = std::move(from_disk);
      response.outcome = CacheOutcome::kDiskHit;
      return response;
    }
  }
  return std::nullopt;
}

CompileResponse CompileService::CompileOn(const graph::Dag& dag,
                                          const CompileRequest& params) {
  if (params.deadline && SteadyClock::now() > *params.deadline) {
    deadline_expired_.fetch_add(1, std::memory_order_relaxed);
    throw DeadlineExceeded(
        "compile request deadline expired before the solve started");
  }
  return Execute(dag, params, std::nullopt);
}

CompileResponse CompileService::Compile(const CompileRequest& request) {
  // Admission is where a request's trace id is minted (when tracing is
  // armed and the caller didn't bring one, e.g. from a fleet forward).
  std::uint64_t trace_id = request.trace_id;
  if (trace_id == 0 && obs::Armed()) {
    trace_id = obs::Tracer::Global().MintTraceId();
  }
  const obs::ScopedTraceId trace_scope(trace_id);
  OBS_SPAN("serve.compile");
  return CompileOn(request.dag, request);
}

CompileService::Ticket CompileService::Submit(CompileRequest request) {
  return SubmitInternal(std::move(request), std::nullopt);
}

CompileService::Ticket CompileService::SubmitInternal(
    CompileRequest request, std::optional<RequestKey> key) {
  // Everything a queued request needs, shared between the run task and the
  // expiry callback — whichever the queue hands to a worker resolves the
  // promise exactly once (an entry is popped exactly once).
  struct Pending {
    std::promise<CompileResponse> promise;
    CompileRequest request;
    std::optional<RequestKey> key;
    SteadyClock::time_point enqueue_time;
  };
  auto pending = std::make_shared<Pending>();
  pending->request = std::move(request);
  pending->key = std::move(key);
  pending->enqueue_time = SteadyClock::now();
  if (pending->request.trace_id == 0 && obs::Armed()) {
    pending->request.trace_id = obs::Tracer::Global().MintTraceId();
  }

  const std::size_t lane = LaneIndex(pending->request.priority);
  lane_counters_[lane].enqueued.fetch_add(1, std::memory_order_relaxed);
  BumpTenant(pending->request.tenant, &TenantMetrics::enqueued);

  Ticket ticket(pending->promise.get_future().share());

  // Deadline-aware admission (opt-in): when the lane's backlog times the
  // recent average solve cost already exceeds the request's deadline, the
  // queue wait alone would expire it — shed now (Overloaded) instead of
  // letting a doomed entry deepen the backlog for everyone behind it.
  if (deadline_admission_ && pending->request.deadline) {
    const double ewma = ewma_solve_seconds_.load(std::memory_order_relaxed);
    const LaneCounters& counters = lane_counters_[lane];
    const std::uint64_t enqueued =
        counters.enqueued.load(std::memory_order_relaxed);
    const std::uint64_t settled =
        counters.started.load(std::memory_order_relaxed) +
        counters.expired.load(std::memory_order_relaxed) +
        counters.shed.load(std::memory_order_relaxed);
    const double backlog =
        enqueued > settled ? static_cast<double>(enqueued - settled) : 0.0;
    const double est_wait =
        backlog * ewma / std::max(1, pool_->NumThreads());
    if (ewma > 0.0 &&
        pending->enqueue_time +
                std::chrono::duration_cast<SteadyClock::duration>(
                    std::chrono::duration<double>(est_wait)) >
            *pending->request.deadline) {
      lane_counters_[lane].shed.fetch_add(1, std::memory_order_relaxed);
      pending->promise.set_exception(std::make_exception_ptr(Overloaded(
          "deadline-aware admission: estimated queue wait " +
          std::to_string(est_wait) + "s on lane " +
          std::string(PriorityName(pending->request.priority)) +
          " exceeds the request deadline")));
      return ticket;
    }
  }

  core::ThreadPool::TaskAttrs attrs;
  attrs.lane = static_cast<int>(lane);
  attrs.flow = pending->request.tenant;  // weighted-fair queueing + quotas
  attrs.sheddable = true;  // a full lane refuses us with Overloaded
  attrs.trace_id = pending->request.trace_id;
  if (pending->request.deadline) {
    attrs.has_deadline = true;
    attrs.deadline = *pending->request.deadline;
  }
  attrs.on_expired = [this, pending, lane] {
    lane_counters_[lane].expired.fetch_add(1, std::memory_order_relaxed);
    BumpTenant(pending->request.tenant, &TenantMetrics::expired);
    deadline_expired_.fetch_add(1, std::memory_order_relaxed);
    pending->promise.set_exception(std::make_exception_ptr(DeadlineExceeded(
        "compile request deadline expired while queued (lane " +
        std::string(PriorityName(pending->request.priority)) + ")")));
  };

  try {
    pool_->Submit(
        [this, pending, lane] {
          const obs::ScopedTraceId trace_scope(pending->request.trace_id);
          OBS_SPAN("serve.request");
          const double wait = std::chrono::duration<double>(
                                  SteadyClock::now() - pending->enqueue_time)
                                  .count();
          // Belt and braces: the lane queue fails expired entries at pop
          // time, but the FIFO baseline doesn't, and a deadline can pass
          // between the pop decision and this first instruction.
          if (pending->request.deadline &&
              SteadyClock::now() > *pending->request.deadline) {
            lane_counters_[lane].expired.fetch_add(1,
                                                   std::memory_order_relaxed);
            BumpTenant(pending->request.tenant, &TenantMetrics::expired);
            deadline_expired_.fetch_add(1, std::memory_order_relaxed);
            pending->promise.set_exception(std::make_exception_ptr(
                DeadlineExceeded("compile request deadline expired after " +
                                 std::to_string(wait) + "s in queue")));
            return;
          }
          lane_counters_[lane].started.fetch_add(1, std::memory_order_relaxed);
          BumpTenant(pending->request.tenant, &TenantMetrics::started);
          lane_wait_[lane].Record(wait);
          try {
            CompileResponse response =
                Execute(pending->request.dag, pending->request, pending->key);
            response.queue_wait_seconds = wait;
            pending->promise.set_value(std::move(response));
          } catch (...) {
            pending->promise.set_exception(std::current_exception());
          }
        },
        std::move(attrs));
  } catch (const Overloaded&) {
    // The lane refused the entry at its depth bound (nothing enqueued).
    // The typed rejection reaches the caller through the ticket, same as
    // every other async failure.
    lane_counters_[lane].shed.fetch_add(1, std::memory_order_relaxed);
    pending->promise.set_exception(std::current_exception());
  }
  return ticket;
}

bool CompileService::EngineSupportsBatch(std::string_view engine_name) const {
  return engines::EngineRegistry::Global()
      .Create(engine_name, compiler_.MakeEngineContext())
      ->SupportsBatch();
}

std::vector<CompileResponse> CompileService::CompileBatch(
    std::span<const CompileRequest> requests) {
  // Warm kUse entries answer in place — no Dag copy, no pool round-trip (an
  // all-warm batch costs one key hash + shard lookup per request, like the
  // sync path).  Cold kUse misses on a batch-capable engine group by
  // (engine, num_stages, node count): each group of >= 2 becomes ONE pool
  // task that lock-steps the whole group through a batched decode
  // (RunBatchGroup), so a post-ReplaceRl miss storm refills at GEMM speed.
  // Everything else fans out as ordinary async requests on its own lane, so
  // cold graphs get the full single-flight treatment; results gather in
  // input order.  Waiters never deadlock the pool: a flight owner finishes
  // without needing any other queued task (flights only ever belong to
  // running code, so a queued duplicate that runs later simply hits the
  // cache or the resolved flight).
  std::vector<CompileResponse> responses(requests.size());
  std::vector<std::pair<std::size_t, Ticket>> pending;

  // Cold batch candidates, grouped by (canonical engine, stages, nodes,
  // profile fingerprint) — only same-shape graphs targeting the same
  // hardware can lock-step.  std::map keeps group order (and thus solve
  // order) deterministic for a given input.
  std::map<std::tuple<std::string_view, int, int, std::uint64_t,
                      std::uint64_t>,
           std::vector<GroupMember>>
      groups;
  std::map<std::string_view, bool> supports_batch;

  for (std::size_t i = 0; i < requests.size(); ++i) {
    const CompileRequest& request = requests[i];
    if (request.cache_policy == CachePolicy::kUse) {
      RequestKey key = MakeKey(request.dag, request.num_stages, request.engine,
                               request.profile);
      if (ResultPtr cached = TryCached(key)) {
        responses[i].result = std::move(cached);
        responses[i].outcome = CacheOutcome::kHit;
        responses[i].engine_name = key.engine_name;
        responses[i].key_hex = key.hash.ToHex();
        continue;
      }
      if (batch_decode_) {
        // One SupportsBatch probe per distinct engine in the batch.
        auto [probe, inserted] = supports_batch.try_emplace(key.engine_name);
        if (inserted) probe->second = EngineSupportsBatch(key.engine_name);
        if (probe->second) {
          GroupMember member;
          member.index = i;
          member.enqueue_time = SteadyClock::now();
          const auto group_key = std::make_tuple(
              key.engine_name, request.num_stages, request.dag.NodeCount(),
              key.profile_fingerprint.hi, key.profile_fingerprint.lo);
          member.key = std::move(key);
          groups[group_key].push_back(std::move(member));
          continue;
        }
      }
      pending.emplace_back(i, SubmitInternal(request, std::move(key)));
      continue;
    }
    pending.emplace_back(i, SubmitInternal(request, std::nullopt));
  }

  for (auto& [group_key, members] : groups) {
    if (members.size() < 2) {
      // Lone candidate: no batch to form — the ordinary async path.
      for (GroupMember& m : members) {
        pending.emplace_back(m.index,
                             SubmitInternal(requests[m.index], std::move(m.key)));
      }
      continue;
    }
    const int num_stages = std::get<1>(group_key);
    const std::string_view engine_name = std::get<0>(group_key);
    // The group task runs on the most urgent member's lane so a grouped
    // interactive miss is not demoted behind batch-lane floods; per-member
    // lane counters still record each request under its own lane.
    std::size_t task_lane = kNumPriorityLanes - 1;
    for (GroupMember& m : members) {
      const std::size_t lane = LaneIndex(requests[m.index].priority);
      lane_counters_[lane].enqueued.fetch_add(1, std::memory_order_relaxed);
      BumpTenant(requests[m.index].tenant, &TenantMetrics::enqueued);
      task_lane = std::min(task_lane, lane);
      pending.emplace_back(m.index, Ticket(m.promise.get_future().share()));
    }
    // `requests` is captured by view: CompileBatch blocks on every ticket
    // below before returning, so the span outlives the task.  The group
    // task queues under the first member's tenant flow — one grouped solve
    // is one unit of service however many members share it.
    std::string task_flow = requests[members.front().index].tenant;
    auto shared_members =
        std::make_shared<std::vector<GroupMember>>(std::move(members));
    core::ThreadPool::TaskAttrs attrs;
    attrs.lane = static_cast<int>(task_lane);
    attrs.flow = std::move(task_flow);
    pool_->Submit(
        [this, requests, num_stages, engine_name, shared_members] {
          RunBatchGroup(requests, num_stages, engine_name, *shared_members);
        },
        std::move(attrs));
  }

  std::exception_ptr first_failure;
  for (const auto& [i, ticket] : pending) {
    try {
      responses[i] = ticket.WaitResponse();
    } catch (...) {
      if (first_failure == nullptr) first_failure = std::current_exception();
    }
  }
  if (first_failure != nullptr) std::rethrow_exception(first_failure);
  return responses;
}

void CompileService::RunBatchGroup(std::span<const CompileRequest> requests,
                                   int num_stages,
                                   std::string_view engine_name,
                                   std::vector<GroupMember>& members) {
  struct Active {
    GroupMember* member = nullptr;
    std::shared_ptr<Flight> flight;
    double wait_seconds = 0.0;
  };
  std::vector<Active> owners;
  std::vector<Active> waiters;
  owners.reserve(members.size());

  OBS_SPAN("serve.batch_group");
  const auto respond = [](GroupMember& m, CacheOutcome outcome,
                          ResultPtr result, double wait, double solve) {
    CompileResponse response;
    response.result = std::move(result);
    response.outcome = outcome;
    response.queue_wait_seconds = wait;
    response.solve_seconds = solve;
    response.engine_name = m.key.engine_name;
    response.key_hex = m.key.hash.ToHex();
    m.promise.set_value(std::move(response));
  };

  // Phase 1 — per member: settle deadline expiries and late cache hits
  // (another worker may have filled the entry since the probe), then
  // acquire or join the single-flight slot.  Flights only ever belong to
  // running code, so the waiter joins below can never block on a task
  // still sitting in the queue.
  for (GroupMember& m : members) {
    const CompileRequest& request = requests[m.index];
    const std::size_t lane = LaneIndex(request.priority);
    const double wait = std::chrono::duration<double>(SteadyClock::now() -
                                                      m.enqueue_time)
                            .count();
    if (request.deadline && SteadyClock::now() > *request.deadline) {
      lane_counters_[lane].expired.fetch_add(1, std::memory_order_relaxed);
      BumpTenant(request.tenant, &TenantMetrics::expired);
      deadline_expired_.fetch_add(1, std::memory_order_relaxed);
      m.promise.set_exception(std::make_exception_ptr(DeadlineExceeded(
          "compile request deadline expired after " + std::to_string(wait) +
          "s in queue (batched group)")));
      continue;
    }
    lane_counters_[lane].started.fetch_add(1, std::memory_order_relaxed);
    BumpTenant(request.tenant, &TenantMetrics::started);
    lane_wait_[lane].Record(wait);

    Shard& shard = ShardFor(m.key.hash);
    std::shared_ptr<Flight> flight;
    ResultPtr hit;
    bool owner = false;
    {
      const std::lock_guard<std::mutex> lock(shard.mutex);
      if (const auto it = shard.entries.find(m.key.hash);
          it != shard.entries.end() && !DropIfExpiredLocked(shard, it->second)) {
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
        hits_.fetch_add(1, std::memory_order_relaxed);
        hit = it->second->result;
      } else if (const auto fit = shard.flights.find(m.key.hash);
                 fit != shard.flights.end()) {
        flight = fit->second;
        single_flight_waits_.fetch_add(1, std::memory_order_relaxed);
      } else {
        flight = std::make_shared<Flight>();
        flight->future = flight->promise.get_future().share();
        shard.flights.emplace(m.key.hash, flight);
        owner = true;
      }
    }
    if (hit != nullptr) {
      respond(m, CacheOutcome::kHit, std::move(hit), wait, 0.0);
      continue;
    }
    if (!owner) {
      waiters.push_back({&m, std::move(flight), wait});
      continue;
    }

    // Owner: probe the persistent tier before paying a solve, exactly as
    // the single-request path does.
    if (store_ != nullptr) {
      std::int64_t disk_expiry_ms = 0;
      if (ResultPtr from_disk = store_->Probe(m.key.hash, &disk_expiry_ms)) {
        disk_hits_.fetch_add(1, std::memory_order_relaxed);
        std::optional<SteadyClock::time_point> promote_expiry;
        if (disk_expiry_ms != 0) {
          const auto remaining =
              std::chrono::system_clock::time_point(
                  std::chrono::milliseconds(disk_expiry_ms)) -
              std::chrono::system_clock::now();
          promote_expiry =
              SteadyClock::now() +
              std::chrono::duration_cast<SteadyClock::duration>(remaining);
        }
        {
          const std::lock_guard<std::mutex> lock(shard.mutex);
          InsertLocked(shard, m.key, from_disk, promote_expiry);
          shard.flights.erase(m.key.hash);
        }
        flight->promise.set_value(from_disk);
        respond(m, CacheOutcome::kDiskHit, std::move(from_disk), wait, 0.0);
        continue;
      }
    }
    owners.push_back({&m, std::move(flight), wait});
  }

  // Phase 2 — every surviving cold owner solves through ONE inline
  // CompileGroup call on this worker (same-size groups of >= 2 take the
  // lock-stepped batch decode; a lone survivor degrades to a per-graph
  // solve inside the same call).  Solve latency is amortized: total / B is
  // what each request effectively paid.
  if (!owners.empty()) {
    misses_.fetch_add(owners.size(), std::memory_order_relaxed);
    try {
      std::vector<const graph::Dag*> dags;
      dags.reserve(owners.size());
      for (const Active& a : owners) {
        dags.push_back(&requests[a.member->index].dag);
      }
      engines::SolveStats stats;
      const auto start = SteadyClock::now();
      // Every owner shares one profile (the group key includes its
      // fingerprint), so the group solve targets the first owner's.
      std::vector<CompileResult> results = compiler_.CompileGroup(
          std::span<const graph::Dag* const>(dags), num_stages, engine_name,
          owners.front().member->key.profile, &stats);
      const double total =
          std::chrono::duration<double>(SteadyClock::now() - start).count();
      const double amortized = total / static_cast<double>(owners.size());
      batch_solved_.fetch_add(stats.batch_solved, std::memory_order_relaxed);
      batch_single_.fetch_add(stats.single_solved, std::memory_order_relaxed);
      batch_groups_.fetch_add(stats.batch_groups, std::memory_order_relaxed);
      for (std::size_t k = 0; k < owners.size(); ++k) {
        Active& a = owners[k];
        solve_latency_.Record(amortized);
        ResultPtr result =
            std::make_shared<const CompileResult>(std::move(results[k]));
        Shard& shard = ShardFor(a.member->key.hash);
        {
          const std::lock_guard<std::mutex> lock(shard.mutex);
          InsertLocked(shard, a.member->key, result);
          shard.flights.erase(a.member->key.hash);
        }
        a.flight->promise.set_value(result);
        EnqueueWriteback(a.member->key, result);
        respond(*a.member, CacheOutcome::kMiss, std::move(result),
                a.wait_seconds, amortized);
      }
    } catch (...) {
      // One grouped solve, one failure: every owner's flight and ticket
      // rethrow it (collapsed waiters inherit through the flights below).
      failures_.fetch_add(owners.size(), std::memory_order_relaxed);
      const std::exception_ptr failure = std::current_exception();
      for (Active& a : owners) {
        Shard& shard = ShardFor(a.member->key.hash);
        {
          const std::lock_guard<std::mutex> lock(shard.mutex);
          shard.flights.erase(a.member->key.hash);
        }
        a.flight->promise.set_exception(failure);
        a.member->promise.set_exception(failure);
      }
    }
  }

  // Phase 3 — waiters join whatever their flight's owner produced.  A
  // duplicate key inside this group waits on a flight phase 2 already
  // resolved; a flight owned by another worker is actively solving, so the
  // get() blocks on running code, never on the queue.
  for (Active& a : waiters) {
    try {
      ResultPtr result = a.flight->future.get();
      respond(*a.member, CacheOutcome::kCollapsed, std::move(result),
              a.wait_seconds, 0.0);
    } catch (...) {
      a.member->promise.set_exception(std::current_exception());
    }
  }
}

// ── Deprecated shims ─────────────────────────────────────────────────────
// Implemented against the internal paths (not each other) so building this
// file emits no deprecation warnings.

CompileService::ResultPtr CompileService::Compile(const graph::Dag& dag,
                                                  int num_stages,
                                                  std::string_view engine) {
  CompileRequest params;  // dag-less: CompileOn reads the graph by reference
  params.num_stages = num_stages;
  params.engine = EngineRef(engine);
  return CompileOn(dag, params).result;
}

CompileService::ResultPtr CompileService::Compile(const graph::Dag& dag,
                                                  int num_stages,
                                                  Method method) {
  CompileRequest params;
  params.num_stages = num_stages;
  params.engine = EngineRef(method);
  return CompileOn(dag, params).result;
}

CompileService::Ticket CompileService::Submit(graph::Dag dag, int num_stages,
                                              std::string engine) {
  CompileRequest request;
  request.dag = std::move(dag);
  request.num_stages = num_stages;
  request.engine = EngineRef(std::move(engine));
  return SubmitInternal(std::move(request), std::nullopt);
}

CompileService::Ticket CompileService::Submit(graph::Dag dag, int num_stages,
                                              Method method) {
  CompileRequest request;
  request.dag = std::move(dag);
  request.num_stages = num_stages;
  request.engine = EngineRef(method);
  return SubmitInternal(std::move(request), std::nullopt);
}

std::vector<CompileService::ResultPtr> CompileService::LegacyCompileBatch(
    std::span<const graph::Dag* const> dags, int num_stages,
    const EngineRef& engine) {
  // Preserves the old batch contract exactly: warm entries answer through
  // the pointer (no Dag copy at all), only cold graphs are copied into
  // their async request.
  std::vector<ResultPtr> results(dags.size());
  std::vector<std::pair<std::size_t, Ticket>> pending;
  for (std::size_t i = 0; i < dags.size(); ++i) {
    RequestKey key = MakeKey(*dags[i], num_stages, engine, /*profile_name=*/"");
    if (ResultPtr cached = TryCached(key)) {
      results[i] = std::move(cached);
      continue;
    }
    CompileRequest request;
    request.dag = *dags[i];
    request.num_stages = num_stages;
    request.engine = engine;
    pending.emplace_back(i,
                         SubmitInternal(std::move(request), std::move(key)));
  }
  std::exception_ptr first_failure;
  for (const auto& [i, ticket] : pending) {
    try {
      results[i] = ticket.Wait();
    } catch (...) {
      if (first_failure == nullptr) first_failure = std::current_exception();
    }
  }
  if (first_failure != nullptr) std::rethrow_exception(first_failure);
  return results;
}

std::vector<CompileService::ResultPtr> CompileService::CompileBatch(
    std::span<const graph::Dag* const> dags, int num_stages,
    std::string_view engine) {
  return LegacyCompileBatch(dags, num_stages, EngineRef(engine));
}

std::vector<CompileService::ResultPtr> CompileService::CompileBatch(
    std::span<const graph::Dag* const> dags, int num_stages, Method method) {
  return LegacyCompileBatch(dags, num_stages, EngineRef(method));
}

// ─────────────────────────────────────────────────────────────────────────

void CompileService::ReplaceRl(std::shared_ptr<rl::RlScheduler> rl) {
  // Bump the version first: every key computed from here on addresses the
  // new snapshot.  An in-flight solve keyed against the old version may
  // still insert after the sweep, but its key is unreachable (no future
  // request recomputes it), so it can only occupy capacity, never serve.
  // The same reasoning invalidates the persistent tier for free: old-
  // version spill files answer keys no future request recomputes.  They
  // only occupy disk — CompactStore() reclaims them.
  compiler_.ReplaceRl(std::move(rl));
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    for (auto it = shard->lru.begin(); it != shard->lru.end();) {
      if (it->rl_dependent) {
        shard->entries.erase(it->key);
        it = shard->lru.erase(it);
        invalidations_.fetch_add(1, std::memory_order_relaxed);
      } else {
        ++it;
      }
    }
  }
}

void CompileService::BumpTenant(const std::string& tenant,
                                std::uint64_t TenantMetrics::*field) {
  const std::lock_guard<std::mutex> lock(tenant_mutex_);
  tenant_counters_[tenant].*field += 1;
}

ServiceMetrics CompileService::Metrics() const {
  ServiceMetrics metrics;
  metrics.hits = hits_.load(std::memory_order_relaxed);
  metrics.misses = misses_.load(std::memory_order_relaxed);
  metrics.evictions = evictions_.load(std::memory_order_relaxed);
  metrics.invalidations = invalidations_.load(std::memory_order_relaxed);
  metrics.single_flight_waits =
      single_flight_waits_.load(std::memory_order_relaxed);
  metrics.failures = failures_.load(std::memory_order_relaxed);
  metrics.bypasses = bypasses_.load(std::memory_order_relaxed);
  metrics.refreshes = refreshes_.load(std::memory_order_relaxed);
  metrics.deadline_expired =
      deadline_expired_.load(std::memory_order_relaxed);
  metrics.disk_hits = disk_hits_.load(std::memory_order_relaxed);
  metrics.ttl_expired = ttl_expired_.load(std::memory_order_relaxed);
  metrics.admission_rejected =
      admission_rejected_.load(std::memory_order_relaxed);
  metrics.batch_solved = batch_solved_.load(std::memory_order_relaxed);
  metrics.batch_single = batch_single_.load(std::memory_order_relaxed);
  metrics.batch_groups = batch_groups_.load(std::memory_order_relaxed);
  metrics.budget_blown = budget_blown_.load(std::memory_order_relaxed);
  metrics.degraded_served = degraded_served_.load(std::memory_order_relaxed);
  metrics.fallback_exhausted =
      fallback_exhausted_.load(std::memory_order_relaxed);
  metrics.writeback_errors =
      writeback_errors_.load(std::memory_order_relaxed);
  metrics.peer_fetches = peer_fetches_.load(std::memory_order_relaxed);
  metrics.peer_hits = peer_hits_.load(std::memory_order_relaxed);
  metrics.peer_fetch_failures =
      peer_fetch_failures_.load(std::memory_order_relaxed);
  {
    const std::lock_guard<std::mutex> lock(breaker_mutex_);
    for (const auto& [name, breaker] : breakers_) {
      const CircuitBreaker::Snapshot snapshot = breaker->GetSnapshot();
      BreakerMetrics& out = metrics.breakers[std::string(name)];
      out.state = std::string(ToString(snapshot.state));
      out.consecutive_failures = snapshot.consecutive_failures;
      out.opened = snapshot.opened;
      out.short_circuits = snapshot.short_circuits;
    }
  }
  if (store_ != nullptr) metrics.store = store_->Metrics();
  {
    const std::lock_guard<std::mutex> lock(tenant_mutex_);
    metrics.tenants = tenant_counters_;
  }
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    metrics.cache_size += shard->entries.size();
  }
  solve_latency_.Percentiles(metrics.solve_p50_seconds,
                             metrics.solve_p99_seconds);
  for (std::size_t lane = 0; lane < kNumPriorityLanes; ++lane) {
    LaneMetrics& out = metrics.lanes[lane];
    out.enqueued = lane_counters_[lane].enqueued.load(std::memory_order_relaxed);
    out.started = lane_counters_[lane].started.load(std::memory_order_relaxed);
    out.expired = lane_counters_[lane].expired.load(std::memory_order_relaxed);
    out.shed = lane_counters_[lane].shed.load(std::memory_order_relaxed);
    metrics.shed += out.shed;
    // Monotone counters loaded independently; saturate rather than wrap on
    // a transiently inconsistent snapshot.  Shed requests counted enqueued
    // but never start or expire, so they settle here too.
    const std::uint64_t settled = out.started + out.expired + out.shed;
    out.depth = out.enqueued > settled
                    ? static_cast<std::size_t>(out.enqueued - settled)
                    : 0;
    lane_wait_[lane].Percentiles(out.wait_p50_seconds, out.wait_p99_seconds);
  }
  return metrics;
}

void CompileService::ClearCache() {
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    shard->entries.clear();
    shard->lru.clear();
  }
}

}  // namespace respect::serve
