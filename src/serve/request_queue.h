// RequestQueue — the deadline-aware, three-lane scheduling policy behind
// CompileService's async path, plugged into core::ThreadPool as its
// TaskQueue.
//
// Ordering.  Each lane (interactive / normal / batch, see serve::Priority)
// is FIFO.  Across lanes a pop picks the entry with the smallest *score*
//
//     score = enqueue_time + lane_index * aging_seconds
//
// which is strict priority — interactive beats normal beats batch — for
// entries younger than the aging horizon, and turns into
// longest-waiting-first once a lower lane's head has waited `aging_seconds`
// per lane step longer than a higher lane's head.  A batch flood therefore
// never starves (its head's score keeps falling relative to fresh
// interactive arrivals), yet a just-submitted interactive request overtakes
// any young batch backlog.  aging_seconds <= 0 disables aging (pure strict
// priority, batch may starve).
//
// Deadlines.  A pop first drains expired lane heads, most-urgent lane
// first: the entry's on_expired callback is handed to the worker in place
// of its task, so an expired request costs the worker a few microseconds
// (failing the waiter with DeadlineExceeded) instead of a solve.  Expiry is
// checked at lane heads only — an entry queued behind a live head fails
// the moment it surfaces, not before.
//
// Batch concurrency cap.  Options::max_batch_inflight > 0 bounds how many
// batch-lane tasks may *run* at once: while the cap is reached, Size()
// stops reporting the batch backlog (so idle workers sleep instead of
// popping it) and Pop() skips the batch lane.  A popped batch task is
// wrapped to release its slot when it finishes; the worker that ran it
// re-examines the queue right after, which is what resumes a capped
// backlog — no pool cooperation needed.  The cap is what keeps a batch
// flood from momentarily holding every worker: with a cap of N, an
// interactive request never waits behind more than N batch solves.
// Deadline expiry of entries hidden by the cap surfaces when a slot frees
// (or any other pop happens), not at the instant the deadline passes.
//
// Threading.  Push/Pop/Size run under the owning ThreadPool's mutex (the
// TaskQueue contract), so the lane deques need no locking of their own.
// The depth/expired counters — and the batch-running count, which the
// wrapped task decrements from a worker thread — are atomics and may be
// read from any thread.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>

#include "core/thread_pool.h"
#include "serve/request.h"

namespace respect::serve {

class RequestQueue final : public core::ThreadPool::TaskQueue {
 public:
  struct Options {
    /// Lane-step aging quantum (see file comment); <= 0 disables aging.
    double aging_seconds = 2.0;

    /// Max batch-lane tasks running concurrently (see file comment);
    /// <= 0 means unlimited.
    int max_batch_inflight = 0;

    /// Test seam: time source for enqueue stamps and expiry checks.
    /// Defaults to std::chrono::steady_clock::now.
    std::function<std::chrono::steady_clock::time_point()> clock;
  };

  RequestQueue();
  explicit RequestQueue(const Options& options);

  void Push(core::ThreadPool::Task task,
            core::ThreadPool::TaskAttrs attrs) override;
  [[nodiscard]] core::ThreadPool::Task Pop() override;
  [[nodiscard]] std::size_t Size() const override;

  /// Entries resident in `lane` right now (atomic; readable off-thread).
  [[nodiscard]] std::size_t Depth(Priority lane) const;

  /// Entries of `lane` expired in-queue so far (atomic; readable
  /// off-thread).
  [[nodiscard]] std::uint64_t Expired(Priority lane) const;

  /// Batch-lane tasks running right now (atomic; readable off-thread).
  /// Always 0 when no cap is configured — the count is only maintained
  /// when it gates something.
  [[nodiscard]] int BatchRunning() const;

 private:
  struct Entry {
    core::ThreadPool::Task run;
    core::ThreadPool::Task on_expired;
    std::chrono::steady_clock::time_point enqueue;
    std::chrono::steady_clock::time_point deadline{};
    bool has_deadline = false;
  };

  struct Lane {
    std::deque<Entry> entries;
    std::atomic<std::size_t> depth{0};
    std::atomic<std::uint64_t> expired{0};
  };

  [[nodiscard]] std::chrono::steady_clock::time_point Now() const;
  [[nodiscard]] core::ThreadPool::Task TakeFront(Lane& lane, bool expired);

  /// True when the batch lane may not start another task right now.
  [[nodiscard]] bool BatchCapped() const;

  /// Whether `lane` is the capped batch lane.
  [[nodiscard]] bool IsBatchLane(const Lane& lane) const {
    return &lane == &lanes_.back();
  }

  Options options_;
  std::array<Lane, kNumPriorityLanes> lanes_;
  std::size_t size_ = 0;
  std::atomic<int> batch_running_{0};
};

}  // namespace respect::serve
