// RequestQueue — the deadline-aware, three-lane, tenant-fair scheduling
// policy behind CompileService's async path, plugged into core::ThreadPool
// as its TaskQueue.
//
// Ordering.  Each lane (interactive / normal / batch, see serve::Priority)
// holds one FIFO sub-queue per *flow* (the serving layer passes the tenant
// id as TaskAttrs::flow; "" is the shared default flow).  Inside a lane,
// flows are scheduled by start-time fair queueing: entry tags are
//
//     tag = max(lane_virtual_time, flow_last_tag) + 1 / weight(flow)
//
// and a pop takes the smallest-tagged eligible head, so over any backlogged
// interval each tenant receives service proportional to its configured
// weight — a tenant flooding 10x the requests cannot crowd out the others'
// turn, it just deepens its own sub-queue.  With a single flow the tag
// order is exactly arrival order, preserving the original per-lane FIFO.
//
// Across lanes a pop picks the lane whose eligible head has the smallest
// *score*
//
//     score = enqueue_time + lane_index * aging_seconds
//
// which is strict priority — interactive beats normal beats batch — for
// entries younger than the aging horizon, and turns into
// longest-waiting-first once a lower lane's head has waited `aging_seconds`
// per lane step longer than a higher lane's head.  A batch flood therefore
// never starves, yet a just-submitted interactive request overtakes any
// young batch backlog.  aging_seconds <= 0 disables aging (pure strict
// priority, batch may starve).
//
// Deadlines.  A pop first drains expired flow heads, most-urgent lane
// first: the entry's on_expired callback is handed to the worker in place
// of its task, so an expired request costs the worker a few microseconds
// (failing the waiter with DeadlineExceeded) instead of a solve.  Expiry is
// checked at sub-queue heads only — an entry queued behind a live head
// fails the moment it surfaces, not before.  Expiry costs neither a batch
// slot nor a tenant quota slot.
//
// Batch concurrency cap.  Options::max_batch_inflight > 0 bounds how many
// batch-lane tasks may *run* at once: while the cap is reached, Size()
// stops reporting the batch backlog (so idle workers sleep instead of
// popping it) and Pop() skips the batch lane.  A popped batch task is
// wrapped to release its slot when it finishes; the worker that ran it
// re-examines the queue right after, which is what resumes a capped
// backlog — no pool cooperation needed.
//
// Tenant quotas.  Options::tenant_quotas / default_tenant_quota bound how
// many of one tenant's tasks may run concurrently, the same way: a flow at
// its quota is skipped by Pop() and its backlog hidden from Size() (its
// expired heads stay visible), and the slot releases when the finishing
// worker completes the wrapped task.  Quotas are per tenant across all
// lanes.  <= 0 means unlimited — and unlimited flows are not tracked at
// all, so the default configuration pays nothing.
//
// Threading.  Push/Pop/Size run under the owning ThreadPool's mutex (the
// TaskQueue contract), so the lane/flow deques need no locking of their
// own.  The depth/expired counters and the batch-running count are atomics;
// the per-tenant running map is guarded by its own mutex because wrapped
// tasks decrement it from worker threads (lock order: pool mutex, then
// running mutex — the release path takes only the running mutex).
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "core/thread_pool.h"
#include "serve/request.h"

namespace respect::serve {

class RequestQueue final : public core::ThreadPool::TaskQueue {
 public:
  struct Options {
    /// Lane-step aging quantum (see file comment); <= 0 disables aging.
    double aging_seconds = 2.0;

    /// Max batch-lane tasks running concurrently (see file comment);
    /// <= 0 means unlimited.
    int max_batch_inflight = 0;

    /// Bound on entries resident per lane; <= 0 means unbounded.  Only
    /// entries marked TaskAttrs::sheddable are refused (Push throws
    /// serve::Overloaded, counted in Shed()); bookkeeping tasks always
    /// enqueue.  The bound compares against the lane's total residency, so
    /// unsheddable entries consume depth but are never rejected.
    int max_lane_depth = 0;

    /// Test seam: time source for enqueue stamps and expiry checks.
    /// Defaults to std::chrono::steady_clock::now.
    std::function<std::chrono::steady_clock::time_point()> clock;

    /// Fair-queueing weight of tenants absent from tenant_weights.
    /// Non-positive weights are clamped to a tiny positive value.
    double default_tenant_weight = 1.0;

    /// Per-tenant fair-queueing weights: a weight-2 tenant receives twice
    /// the service share of a weight-1 tenant while both are backlogged.
    std::map<std::string, double> tenant_weights;

    /// Concurrency quota of tenants absent from tenant_quotas; <= 0 means
    /// unlimited.
    int default_tenant_quota = 0;

    /// Per-tenant concurrency quotas (<= 0 entries mean unlimited).
    std::map<std::string, int> tenant_quotas;
  };

  RequestQueue();
  explicit RequestQueue(const Options& options);

  /// Throws serve::Overloaded (nothing enqueued) for a sheddable entry
  /// pushed into a lane at its configured max_lane_depth.
  void Push(core::ThreadPool::Task task,
            core::ThreadPool::TaskAttrs attrs) override;
  [[nodiscard]] core::ThreadPool::Task Pop() override;
  [[nodiscard]] std::size_t Size() const override;

  /// Settles every entry still queued when the owning pool shuts down:
  /// runs each entry's on_expired exactly once (entries without one are
  /// dropped), so no promise-holding waiter hangs on a destroyed pool.
  /// Called by ~ThreadPool after the workers have joined.
  void Shutdown() override;

  /// Entries resident in `lane` right now (atomic; readable off-thread).
  [[nodiscard]] std::size_t Depth(Priority lane) const;

  /// Entries of `lane` expired in-queue so far (atomic; readable
  /// off-thread).
  [[nodiscard]] std::uint64_t Expired(Priority lane) const;

  /// Sheddable entries refused at Push because `lane` was at its depth
  /// bound (atomic; readable off-thread).
  [[nodiscard]] std::uint64_t Shed(Priority lane) const;

  /// Entries settled by Shutdown() — on_expired run or dropped — instead
  /// of popped by a worker (atomic; readable off-thread).
  [[nodiscard]] std::uint64_t ShutdownDrained() const;

  /// Batch-lane tasks running right now (atomic; readable off-thread).
  /// Always 0 when no cap is configured — the count is only maintained
  /// when it gates something.
  [[nodiscard]] int BatchRunning() const;

  /// Tasks of `tenant` running right now.  Only tenants with a finite
  /// quota are tracked (0 otherwise).  Readable off-thread.
  [[nodiscard]] int TenantRunning(const std::string& tenant) const;

 private:
  struct Entry {
    core::ThreadPool::Task run;
    core::ThreadPool::Task on_expired;
    std::chrono::steady_clock::time_point enqueue;
    std::chrono::steady_clock::time_point deadline{};
    bool has_deadline = false;
    double tag = 0.0;  // start-time fair-queueing tag within the lane
    std::uint64_t trace_id = 0;  // obs flow tag for the queue-wait span
  };

  /// One tenant's FIFO inside a lane.  Flows never hold an empty deque —
  /// drained flows are erased (a re-appearing tenant re-anchors to the
  /// lane's virtual time).
  struct Flow {
    std::deque<Entry> entries;
    double last_tag = 0.0;
  };

  struct Lane {
    std::map<std::string, Flow> flows;  // deterministic iteration order
    double virtual_time = 0.0;
    std::atomic<std::size_t> depth{0};
    std::atomic<std::uint64_t> expired{0};
    std::atomic<std::uint64_t> shed{0};
  };

  using FlowIter = std::map<std::string, Flow>::iterator;

  [[nodiscard]] std::chrono::steady_clock::time_point Now() const;

  /// Consumes the head of `it`'s flow; claims batch/quota slots and wraps
  /// the task to release them unless the entry expired.
  [[nodiscard]] core::ThreadPool::Task TakeEntry(Lane& lane, FlowIter it,
                                                 bool expired);

  /// Smallest-tagged flow whose tenant is under quota; flows.end() if every
  /// flow is blocked.
  [[nodiscard]] FlowIter EligibleHead(Lane& lane);

  [[nodiscard]] double WeightFor(const std::string& flow) const;
  [[nodiscard]] int QuotaFor(const std::string& flow) const;
  [[nodiscard]] bool FlowBlocked(const std::string& flow) const;
  [[nodiscard]] bool HasQuotas() const;

  /// True when the batch lane may not start another task right now.
  [[nodiscard]] bool BatchCapped() const;

  /// Whether `lane` is the capped batch lane.
  [[nodiscard]] bool IsBatchLane(const Lane& lane) const {
    return &lane == &lanes_.back();
  }

  Options options_;
  std::array<Lane, kNumPriorityLanes> lanes_;
  std::size_t size_ = 0;
  std::atomic<int> batch_running_{0};
  std::atomic<std::uint64_t> shutdown_drained_{0};

  /// Tenants with a finite quota currently running tasks (see file
  /// comment for the lock order).
  mutable std::mutex running_mutex_;
  std::map<std::string, int> running_;
};

}  // namespace respect::serve
