#include "serve/request_queue.h"

#include <algorithm>
#include <string>
#include <utility>

#include "core/failpoint.h"
#include "obs/trace.h"

namespace respect::serve {

namespace {

using Clock = std::chrono::steady_clock;

/// Lane index for arbitrary Submit attrs: out-of-range hints land in the
/// nearest lane instead of crashing (the pool contract says any int).
std::size_t LaneIndex(int lane) {
  return static_cast<std::size_t>(
      std::clamp<int>(lane, 0, static_cast<int>(kNumPriorityLanes) - 1));
}

}  // namespace

RequestQueue::RequestQueue() : RequestQueue(Options{}) {}

RequestQueue::RequestQueue(const Options& options) : options_(options) {}

Clock::time_point RequestQueue::Now() const {
  return options_.clock ? options_.clock() : Clock::now();
}

double RequestQueue::WeightFor(const std::string& flow) const {
  const auto it = options_.tenant_weights.find(flow);
  const double weight =
      it != options_.tenant_weights.end() ? it->second
                                          : options_.default_tenant_weight;
  return std::max(weight, 1e-6);
}

int RequestQueue::QuotaFor(const std::string& flow) const {
  const auto it = options_.tenant_quotas.find(flow);
  const int quota = it != options_.tenant_quotas.end()
                        ? it->second
                        : options_.default_tenant_quota;
  return std::max(quota, 0);  // <= 0 means unlimited
}

bool RequestQueue::HasQuotas() const {
  return options_.default_tenant_quota > 0 ||
         !options_.tenant_quotas.empty();
}

bool RequestQueue::FlowBlocked(const std::string& flow) const {
  const int quota = QuotaFor(flow);
  if (quota <= 0) return false;
  const std::lock_guard<std::mutex> lock(running_mutex_);
  const auto it = running_.find(flow);
  return it != running_.end() && it->second >= quota;
}

void RequestQueue::Push(core::ThreadPool::Task task,
                        core::ThreadPool::TaskAttrs attrs) {
  Lane& lane = lanes_[LaneIndex(attrs.lane)];
  // Depth-bound admission runs under the pool mutex, so the depth check and
  // the enqueue are atomic with respect to every other Push/Pop: the bound
  // can never be overshot by a race.  The throw propagates out of
  // ThreadPool::Submit before any pool accounting happens.
  if (attrs.sheddable && options_.max_lane_depth > 0 &&
      lane.depth.load(std::memory_order_relaxed) >=
          static_cast<std::size_t>(options_.max_lane_depth)) {
    lane.shed.fetch_add(1, std::memory_order_relaxed);
    throw Overloaded("lane " + std::string(PriorityName(static_cast<Priority>(
                         LaneIndex(attrs.lane)))) +
                     " at depth bound " +
                     std::to_string(options_.max_lane_depth));
  }
  Flow& flow = lane.flows[attrs.flow];
  const double tag = std::max(lane.virtual_time, flow.last_tag) +
                     1.0 / WeightFor(attrs.flow);
  flow.last_tag = tag;
  flow.entries.push_back(Entry{std::move(task), std::move(attrs.on_expired),
                               Now(), attrs.deadline, attrs.has_deadline,
                               tag, attrs.trace_id});
  lane.depth.fetch_add(1, std::memory_order_relaxed);
  ++size_;
}

bool RequestQueue::BatchCapped() const {
  return options_.max_batch_inflight > 0 &&
         batch_running_.load(std::memory_order_relaxed) >=
             options_.max_batch_inflight;
}

core::ThreadPool::Task RequestQueue::TakeEntry(Lane& lane, FlowIter it,
                                               bool expired) {
  Flow& flow = it->second;
  Entry entry = std::move(flow.entries.front());
  flow.entries.pop_front();
  const std::string flow_name = it->first;
  if (flow.entries.empty()) lane.flows.erase(it);
  lane.depth.fetch_sub(1, std::memory_order_relaxed);
  --size_;

  if (obs::Armed()) {
    // The popping thread records the whole enqueue -> pop wait as one
    // manually-timed span (it crosses threads, so RAII can't).  Lane names
    // are constexpr literals — process-lifetime, safe to borrow.  With a
    // test clock installed the stamps are synthetic; the span is recorded
    // on the same clock, so it is at least self-consistent.
    const std::size_t lane_index =
        static_cast<std::size_t>(&lane - lanes_.data());
    const std::string_view lane_name =
        PriorityName(static_cast<Priority>(lane_index));
    const auto to_us = [](Clock::time_point t) {
      return std::chrono::duration_cast<std::chrono::microseconds>(
                 t.time_since_epoch())
          .count();
    };
    obs::RecordSpan("serve.queue_wait", to_us(entry.enqueue), to_us(Now()),
                    entry.trace_id, lane_name.data(),
                    static_cast<std::uint32_t>(lane_name.size()));
  }

  if (expired) {
    lane.expired.fetch_add(1, std::memory_order_relaxed);
    if (entry.on_expired) return std::move(entry.on_expired);
    return [] {};  // Pop must return a runnable callable
  }

  // The popped tag advances the lane's virtual time (monotonically — a
  // quota-unblocked flow may surface an older tag).
  lane.virtual_time = std::max(lane.virtual_time, entry.tag);

#if defined(RESPECT_FAILPOINTS) && RESPECT_FAILPOINTS
  // Chaos hook: the injected action (a stall, an error) must run on the
  // worker that executes the task, never here under the pool mutex — so
  // wrap instead of evaluating, and only when something is armed.
  if (core::failpoint::Armed()) {
    entry.run = [run = std::move(entry.run)] {
      RESPECT_FAILPOINT("queue.pop");
      run();
    };
  }
#endif

  // Claim slots now (under the pool mutex) and release them when the task
  // finishes on its worker — the release is visible to that worker's very
  // next Size() check, which is what resumes a capped/quota'd backlog.
  const bool batch_slot =
      IsBatchLane(lane) && options_.max_batch_inflight > 0;
  if (batch_slot) batch_running_.fetch_add(1, std::memory_order_relaxed);
  std::optional<std::string> quota_slot;
  if (QuotaFor(flow_name) > 0) {
    const std::lock_guard<std::mutex> lock(running_mutex_);
    ++running_[flow_name];
    quota_slot = flow_name;
  }
  if (!batch_slot && !quota_slot.has_value()) return std::move(entry.run);

  auto release = [this, batch_slot, quota_slot = std::move(quota_slot)] {
    if (batch_slot) batch_running_.fetch_sub(1, std::memory_order_relaxed);
    if (quota_slot.has_value()) {
      const std::lock_guard<std::mutex> lock(running_mutex_);
      const auto running = running_.find(*quota_slot);
      if (running != running_.end() && --running->second <= 0) {
        running_.erase(running);
      }
    }
  };
  return [run = std::move(entry.run), release = std::move(release)] {
    try {
      run();
    } catch (...) {
      release();
      throw;
    }
    release();
  };
}

RequestQueue::FlowIter RequestQueue::EligibleHead(Lane& lane) {
  FlowIter best = lane.flows.end();
  for (FlowIter it = lane.flows.begin(); it != lane.flows.end(); ++it) {
    if (FlowBlocked(it->first)) continue;
    // Strictly-less keeps tag ties on the lexicographically first tenant.
    if (best == lane.flows.end() ||
        it->second.entries.front().tag < best->second.entries.front().tag) {
      best = it;
    }
  }
  return best;
}

core::ThreadPool::Task RequestQueue::Pop() {
  const Clock::time_point now = Now();

  // Expired heads fail fast before any live work runs, most-urgent lane
  // first.  One entry per Pop keeps the pool's push/pop accounting 1:1.
  // Expiring costs neither a batch slot nor a quota slot, so neither cap
  // gates this sweep.
  for (Lane& lane : lanes_) {
    for (FlowIter it = lane.flows.begin(); it != lane.flows.end(); ++it) {
      const Entry& head = it->second.entries.front();
      if (head.has_deadline && head.deadline < now) {
        return TakeEntry(lane, it, /*expired=*/true);
      }
    }
  }

  // Aging disabled: strict priority, first lane with an eligible flow wins.
  if (options_.aging_seconds <= 0.0) {
    for (Lane& lane : lanes_) {
      if (IsBatchLane(lane) && BatchCapped()) continue;
      const FlowIter it = EligibleHead(lane);
      if (it != lane.flows.end()) return TakeEntry(lane, it, /*expired=*/false);
    }
    return [] {};  // unreachable under the Size() > 0 contract
  }

  const auto aging = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(options_.aging_seconds));
  Lane* best_lane = nullptr;
  FlowIter best_flow;
  Clock::time_point best_score{};
  for (std::size_t i = 0; i < lanes_.size(); ++i) {
    Lane& lane = lanes_[i];
    if (IsBatchLane(lane) && BatchCapped()) continue;
    const FlowIter it = EligibleHead(lane);
    if (it == lane.flows.end()) continue;
    const Clock::time_point score = it->second.entries.front().enqueue +
                                    aging * static_cast<std::int64_t>(i);
    // Strictly-less keeps ties on the more urgent lane.
    if (best_lane == nullptr || score < best_score) {
      best_lane = &lane;
      best_flow = it;
      best_score = score;
    }
  }
  if (best_lane == nullptr) return [] {};  // unreachable under the contract
  return TakeEntry(*best_lane, best_flow, /*expired=*/false);
}

std::size_t RequestQueue::Size() const {
  // Backlogs hidden by the batch cap or a tenant quota are invisible: idle
  // workers must sleep on them, not spin Pop against entries Pop would
  // skip.  They become visible again the moment a slot frees (the
  // completing worker re-checks Size() before it sleeps) — except expired
  // flow heads, which are poppable regardless because expiry costs no slot.
  const bool capped = BatchCapped();
  if (!capped && !HasQuotas()) return size_;

  const Clock::time_point now = Now();
  std::size_t visible = 0;
  for (const Lane& lane : lanes_) {
    const bool lane_capped = capped && IsBatchLane(lane);
    for (const auto& [name, flow] : lane.flows) {
      if (!lane_capped && !FlowBlocked(name)) {
        visible += flow.entries.size();
        continue;
      }
      const Entry& head = flow.entries.front();
      if (head.has_deadline && head.deadline < now) ++visible;
    }
  }
  return visible;
}

std::size_t RequestQueue::Depth(Priority lane) const {
  return lanes_[LaneIndex(static_cast<int>(lane))].depth.load(
      std::memory_order_relaxed);
}

std::uint64_t RequestQueue::Expired(Priority lane) const {
  return lanes_[LaneIndex(static_cast<int>(lane))].expired.load(
      std::memory_order_relaxed);
}

std::uint64_t RequestQueue::Shed(Priority lane) const {
  return lanes_[LaneIndex(static_cast<int>(lane))].shed.load(
      std::memory_order_relaxed);
}

std::uint64_t RequestQueue::ShutdownDrained() const {
  return shutdown_drained_.load(std::memory_order_relaxed);
}

void RequestQueue::Shutdown() {
  // Post-join, single-threaded (the TaskQueue::Shutdown contract): workers
  // stop as soon as Size() hits zero, which strands entries hidden by the
  // batch cap or a tenant quota.  Each stranded entry is settled exactly
  // once — its on_expired runs (failing its waiters fast) or, absent one,
  // it is dropped deliberately.
  for (Lane& lane : lanes_) {
    for (auto& [name, flow] : lane.flows) {
      for (Entry& entry : flow.entries) {
        shutdown_drained_.fetch_add(1, std::memory_order_relaxed);
        lane.depth.fetch_sub(1, std::memory_order_relaxed);
        --size_;
        if (entry.on_expired) {
          try {
            entry.on_expired();
          } catch (...) {
            // Settling must reach every entry; a throwing callback cannot
            // be reported anywhere at this point.
          }
        }
      }
    }
    lane.flows.clear();
  }
}

int RequestQueue::BatchRunning() const {
  return batch_running_.load(std::memory_order_relaxed);
}

int RequestQueue::TenantRunning(const std::string& tenant) const {
  const std::lock_guard<std::mutex> lock(running_mutex_);
  const auto it = running_.find(tenant);
  return it == running_.end() ? 0 : it->second;
}

}  // namespace respect::serve
