#include "serve/request_queue.h"

#include <algorithm>
#include <utility>

namespace respect::serve {

namespace {

using Clock = std::chrono::steady_clock;

/// Lane index for arbitrary Submit attrs: out-of-range hints land in the
/// nearest lane instead of crashing (the pool contract says any int).
std::size_t LaneIndex(int lane) {
  return static_cast<std::size_t>(
      std::clamp<int>(lane, 0, static_cast<int>(kNumPriorityLanes) - 1));
}

}  // namespace

RequestQueue::RequestQueue() : RequestQueue(Options{}) {}

RequestQueue::RequestQueue(const Options& options) : options_(options) {}

Clock::time_point RequestQueue::Now() const {
  return options_.clock ? options_.clock() : Clock::now();
}

void RequestQueue::Push(core::ThreadPool::Task task,
                        core::ThreadPool::TaskAttrs attrs) {
  Lane& lane = lanes_[LaneIndex(attrs.lane)];
  lane.entries.push_back(Entry{std::move(task), std::move(attrs.on_expired),
                               Now(), attrs.deadline, attrs.has_deadline});
  lane.depth.fetch_add(1, std::memory_order_relaxed);
  ++size_;
}

bool RequestQueue::BatchCapped() const {
  return options_.max_batch_inflight > 0 &&
         batch_running_.load(std::memory_order_relaxed) >=
             options_.max_batch_inflight;
}

core::ThreadPool::Task RequestQueue::TakeFront(Lane& lane, bool expired) {
  Entry entry = std::move(lane.entries.front());
  lane.entries.pop_front();
  lane.depth.fetch_sub(1, std::memory_order_relaxed);
  --size_;
  if (!expired) {
    if (IsBatchLane(lane) && options_.max_batch_inflight > 0) {
      // Claim a batch slot now (under the pool mutex) and release it when
      // the task finishes on its worker — the release is an atomic store,
      // visible to that worker's very next Size() check, which is what
      // resumes a capped backlog.
      batch_running_.fetch_add(1, std::memory_order_relaxed);
      return [this, run = std::move(entry.run)] {
        try {
          run();
        } catch (...) {
          batch_running_.fetch_sub(1, std::memory_order_relaxed);
          throw;
        }
        batch_running_.fetch_sub(1, std::memory_order_relaxed);
      };
    }
    return std::move(entry.run);
  }
  lane.expired.fetch_add(1, std::memory_order_relaxed);
  if (entry.on_expired) return std::move(entry.on_expired);
  return [] {};  // Pop must return a runnable callable
}

core::ThreadPool::Task RequestQueue::Pop() {
  const Clock::time_point now = Now();

  // Expired heads fail fast before any live work runs, most-urgent lane
  // first.  One entry per Pop keeps the pool's push/pop accounting 1:1.
  // Expiring costs no batch slot, so the cap does not gate this sweep.
  for (Lane& lane : lanes_) {
    if (!lane.entries.empty() && lane.entries.front().has_deadline &&
        lane.entries.front().deadline < now) {
      return TakeFront(lane, /*expired=*/true);
    }
  }

  // Aging disabled: strict priority, first non-empty runnable lane wins.
  if (options_.aging_seconds <= 0.0) {
    for (Lane& lane : lanes_) {
      if (IsBatchLane(lane) && BatchCapped()) continue;
      if (!lane.entries.empty()) return TakeFront(lane, /*expired=*/false);
    }
    return [] {};  // unreachable under the Size() > 0 contract
  }

  const auto aging = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(options_.aging_seconds));
  Lane* best = nullptr;
  Clock::time_point best_score{};
  for (std::size_t i = 0; i < lanes_.size(); ++i) {
    Lane& lane = lanes_[i];
    if (lane.entries.empty()) continue;
    if (IsBatchLane(lane) && BatchCapped()) continue;
    const Clock::time_point score =
        lane.entries.front().enqueue + aging * static_cast<std::int64_t>(i);
    // Strictly-less keeps ties on the more urgent lane.
    if (best == nullptr || score < best_score) {
      best = &lane;
      best_score = score;
    }
  }
  if (best == nullptr) return [] {};  // unreachable under the contract
  return TakeFront(*best, /*expired=*/false);
}

std::size_t RequestQueue::Size() const {
  // A capped batch backlog is invisible: idle workers must sleep on it, not
  // spin Pop against a lane Pop would skip.  It becomes visible again the
  // moment a slot frees (the completing worker re-checks Size() before it
  // sleeps), or immediately for its expired head, which costs no slot.
  if (BatchCapped()) {
    const auto& batch = lanes_.back();
    std::size_t hidden = batch.entries.size();
    if (hidden > 0 && batch.entries.front().has_deadline &&
        batch.entries.front().deadline < Now()) {
      --hidden;  // the expired head is poppable regardless of the cap
    }
    return size_ - hidden;
  }
  return size_;
}

std::size_t RequestQueue::Depth(Priority lane) const {
  return lanes_[LaneIndex(static_cast<int>(lane))].depth.load(
      std::memory_order_relaxed);
}

std::uint64_t RequestQueue::Expired(Priority lane) const {
  return lanes_[LaneIndex(static_cast<int>(lane))].expired.load(
      std::memory_order_relaxed);
}

int RequestQueue::BatchRunning() const {
  return batch_running_.load(std::memory_order_relaxed);
}

}  // namespace respect::serve
