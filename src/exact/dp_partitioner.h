// Exact min-bottleneck partitioner over a fixed topological order.
//
// Restricting schedules to contiguous segments of one topological order
// turns pipeline scheduling into the classic "partition a sequence into n
// segments minimizing the maximum segment weight" problem, which is solvable
// exactly in near-linear time (binary search on the bottleneck + greedy
// feasibility) with a quadratic DP to break ties on communication bytes.
//
// This solver is exact *for the given order*; the full search space over all
// monotone stage assignments is handled by BnbScheduler (bnb_scheduler.h),
// which uses this result as its incumbent seed.
#pragma once

#include <vector>

#include "graph/dag.h"
#include "sched/schedule.h"

namespace respect::exact {

struct DpResult {
  sched::Schedule schedule;
  sched::ObjectiveValue objective;
};

/// Partitions `order` (must be a topological order of `dag`) into exactly
/// `num_stages` contiguous non-empty segments, minimizing the maximum
/// per-segment parameter bytes and, among those, total hop-weighted
/// communication.  Throws std::invalid_argument on a non-topological order
/// or when |V| < num_stages.
[[nodiscard]] DpResult PartitionTopoOrder(const graph::Dag& dag,
                                          const std::vector<graph::NodeId>& order,
                                          int num_stages);

/// Convenience overload using the deterministic Kahn order.
[[nodiscard]] DpResult PartitionDefaultOrder(const graph::Dag& dag,
                                             int num_stages);

/// The smallest bottleneck B such that `order` can be cut into at most
/// `num_stages` segments each weighing <= B (greedy feasibility check).
/// Exposed for tests and for the B&B lower bound.
[[nodiscard]] std::int64_t MinBottleneck(const std::vector<std::int64_t>& weights,
                                         int num_stages);

}  // namespace respect::exact
