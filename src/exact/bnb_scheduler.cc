#include "exact/bnb_scheduler.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <vector>

#include "exact/dp_partitioner.h"
#include "graph/topology.h"

namespace respect::exact {
namespace {

using Clock = std::chrono::steady_clock;

/// Depth-first branch-and-bound state.  Nodes are assigned in a fixed
/// topological order, so every parent of the node being branched on already
/// has a stage.
class BnbSearch {
 public:
  BnbSearch(const graph::Dag& dag, const BnbConfig& config)
      : dag_(dag),
        config_(config),
        topo_(graph::AnalyzeTopology(dag)),
        n_(dag.NodeCount()),
        stages_(config.num_stages) {
    if (config_.num_stages < 1) {
      throw std::invalid_argument("SolveExact: num_stages must be >= 1");
    }
    if (config_.require_nonempty && n_ < config_.num_stages) {
      throw std::invalid_argument("SolveExact: |V| < num_stages");
    }

    // Seed the incumbent with the DP contiguous-partition optimum: a strong
    // upper bound that makes pruning effective immediately.
    const DpResult seed = PartitionDefaultOrder(dag_, stages_);
    best_ = seed.schedule;
    best_value_ = seed.objective;

    // Global peak lower bound: perfect balance or the heaviest single node.
    std::int64_t max_node = 0;
    for (graph::NodeId v = 0; v < n_; ++v) {
      max_node = std::max(max_node, dag_.Attr(v).param_bytes);
    }
    peak_lower_bound_ = std::max(
        max_node, (dag_.TotalParamBytes() + stages_ - 1) / stages_);

    // Suffix parameter mass in assignment order, for the average-load bound.
    suffix_mass_.assign(n_ + 1, 0);
    for (int i = n_ - 1; i >= 0; --i) {
      suffix_mass_[i] =
          suffix_mass_[i + 1] + dag_.Attr(topo_.order[i]).param_bytes;
    }

    assign_.assign(n_, -1);
    loads_.assign(stages_, 0);
    stage_count_.assign(stages_, 0);
    // cur_reach_[v]: max(stage of v, stages of v's already-assigned
    // children); drives incremental hop-weighted communication accounting.
    cur_reach_.assign(n_, 0);
  }

  BnbResult Run() {
    const auto start = Clock::now();
    start_ = start;
    Dfs(0, /*peak=*/0, /*comm=*/0);
    BnbResult result;
    result.schedule = best_;
    result.objective = best_value_;
    // Optimal when the search completed, or when the incumbent already
    // meets the global peak lower bound (peak-optimal; communication is
    // then best-effort within budget).
    result.proved_optimal =
        !budget_hit_ || best_value_.peak_param_bytes <= peak_lower_bound_;
    result.expansions = expansions_;
    result.solve_seconds =
        std::chrono::duration<double>(Clock::now() - start).count();
    return result;
  }

 private:
  bool BudgetExceeded() {
    if (budget_hit_) return true;
    if (config_.max_expansions > 0 && expansions_ >= config_.max_expansions) {
      budget_hit_ = true;
      return true;
    }
    if ((expansions_ & 0xFFF) == 0) {
      config_.cancel.ThrowIfCancelled("b&b expansion");
    }
    if (config_.time_limit_seconds > 0 && (expansions_ & 0xFFF) == 0) {
      const double elapsed =
          std::chrono::duration<double>(Clock::now() - start_).count();
      if (elapsed >= config_.time_limit_seconds) {
        budget_hit_ = true;
        return true;
      }
    }
    return false;
  }

  void Dfs(int idx, std::int64_t peak, std::int64_t comm) {
    if (BudgetExceeded()) return;
    ++expansions_;

    if (idx == n_) {
      if (config_.require_nonempty) {
        for (int k = 0; k < stages_; ++k) {
          if (stage_count_[k] == 0) return;  // infeasible leaf
        }
      }
      const sched::ObjectiveValue value{peak, comm};
      if (value < best_value_) {
        best_value_ = value;
        best_.num_stages = stages_;
        best_.stage = assign_;
      }
      return;
    }

    const graph::NodeId v = topo_.order[idx];
    int lo = 0;
    for (const graph::NodeId p : dag_.Parents(v)) {
      lo = std::max(lo, assign_[p]);
    }

    // Non-empty pruning: every still-empty stage needs one of the remaining
    // nodes; nodes can fill any stage >= lo, but stages < lo can only be
    // filled by other remaining nodes.  Cheap conservative check: remaining
    // node count must cover the number of empty stages.
    if (config_.require_nonempty) {
      int empty = 0;
      for (int k = 0; k < stages_; ++k) {
        if (stage_count_[k] == 0) ++empty;
      }
      if (n_ - idx < empty) return;
    }

    const std::int64_t mass = dag_.Attr(v).param_bytes;

    // Candidate stages ordered by optimistic resulting objective so good
    // incumbents are found early.
    struct Cand {
      int stage;
      sched::ObjectiveValue opt;
    };
    std::vector<Cand> cands;
    cands.reserve(stages_ - lo);
    for (int k = lo; k < stages_; ++k) {
      const std::int64_t new_peak = std::max(peak, loads_[k] + mass);
      std::int64_t comm_inc = 0;
      for (const graph::NodeId p : dag_.Parents(v)) {
        if (k > cur_reach_[p]) {
          comm_inc += dag_.Attr(p).output_bytes * (k - cur_reach_[p]);
        }
      }
      // The final peak cannot end below the global balance bound.
      const std::int64_t lb_peak = std::max(new_peak, peak_lower_bound_);
      const sched::ObjectiveValue lb{lb_peak, comm + comm_inc};
      if (lb < best_value_) {
        cands.push_back(Cand{k, lb});
      }
    }
    std::sort(cands.begin(), cands.end(),
              [](const Cand& a, const Cand& b) { return a.opt < b.opt; });

    for (const Cand& cand : cands) {
      const int k = cand.stage;
      const std::int64_t new_peak = std::max(peak, loads_[k] + mass);
      // Recompute the bound against the (possibly improved) incumbent.
      if (!(sched::ObjectiveValue{new_peak, comm} < best_value_)) continue;

      std::int64_t comm_inc = 0;
      std::vector<std::pair<graph::NodeId, int>> saved_reach;
      for (const graph::NodeId p : dag_.Parents(v)) {
        if (k > cur_reach_[p]) {
          comm_inc += dag_.Attr(p).output_bytes * (k - cur_reach_[p]);
          saved_reach.emplace_back(p, cur_reach_[p]);
          cur_reach_[p] = k;
        }
      }
      if (!(sched::ObjectiveValue{new_peak, comm + comm_inc} < best_value_)) {
        for (const auto& [p, r] : saved_reach) cur_reach_[p] = r;
        continue;
      }

      assign_[v] = k;
      cur_reach_[v] = k;
      loads_[k] += mass;
      ++stage_count_[k];

      Dfs(idx + 1, new_peak, comm + comm_inc);

      --stage_count_[k];
      loads_[k] -= mass;
      assign_[v] = -1;
      for (const auto& [p, r] : saved_reach) cur_reach_[p] = r;
      if (budget_hit_) return;
    }
  }

  static std::int64_t Total(const std::vector<std::int64_t>& v) {
    std::int64_t t = 0;
    for (const std::int64_t x : v) t += x;
    return t;
  }

  const graph::Dag& dag_;
  const BnbConfig config_;
  const graph::TopoInfo topo_;
  const int n_;
  const int stages_;

  sched::Schedule best_;
  sched::ObjectiveValue best_value_;

  std::vector<std::int64_t> suffix_mass_;
  std::int64_t peak_lower_bound_ = 0;
  std::vector<int> assign_;
  std::vector<std::int64_t> loads_;
  std::vector<int> stage_count_;
  std::vector<int> cur_reach_;

  std::int64_t expansions_ = 0;
  bool budget_hit_ = false;
  Clock::time_point start_;
};

}  // namespace

BnbResult SolveExact(const graph::Dag& dag, const BnbConfig& config) {
  dag.Validate();
  BnbSearch search(dag, config);
  return search.Run();
}

}  // namespace respect::exact
