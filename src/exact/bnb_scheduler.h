// Exact branch-and-bound scheduler over the full space of monotone stage
// assignments.
//
// This plays the role of the paper's "exact optimal scheduling method
// conducted on constraint solving scheduling using ILP solver" (CPLEX in the
// paper; our in-repo ILP front end in src/ilp delegates to this solver).
// The objective is lexicographic (peak per-stage parameter bytes, then
// hop-weighted communication bytes), matching the paper's memory-allocation
// + communication-cost optimization.
//
// Unlike DpPartitioner the search is NOT restricted to contiguous segments
// of one topological order: any assignment with stage(u) <= stage(v) along
// every edge is explored.  Exactness (given enough budget) is verified
// against brute-force enumeration in tests.
#pragma once

#include <cstdint>

#include "core/cancel.h"
#include "graph/dag.h"
#include "sched/schedule.h"

namespace respect::exact {

struct BnbConfig {
  int num_stages = 4;

  /// Every pipeline stage must receive at least one operator.
  bool require_nonempty = true;

  /// Search budget: maximum number of branch-and-bound tree nodes expanded
  /// before returning the incumbent (0 = unlimited).  The paper's CPLEX runs
  /// are similarly wall-clock bounded on large models.
  std::int64_t max_expansions = 20'000'000;

  /// Wall-clock ceiling in seconds (0 = unlimited); checked periodically.
  double time_limit_seconds = 0.0;

  /// Cooperative cancellation, polled alongside the periodic wall-clock
  /// check.  Unlike the soft budgets above it does NOT return the
  /// incumbent: the search unwinds with core::CancelledError.
  core::CancelToken cancel;
};

struct BnbResult {
  sched::Schedule schedule;
  sched::ObjectiveValue objective;

  /// True when the search ran to completion, i.e. the schedule is proved
  /// optimal; false when a budget cut it short (the schedule is still the
  /// best incumbent found and is always feasible).
  bool proved_optimal = false;

  std::int64_t expansions = 0;
  double solve_seconds = 0.0;
};

/// Solves the instance.  Throws std::invalid_argument when
/// |V| < num_stages and require_nonempty is set.
[[nodiscard]] BnbResult SolveExact(const graph::Dag& dag,
                                   const BnbConfig& config);

}  // namespace respect::exact
