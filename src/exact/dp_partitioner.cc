#include "exact/dp_partitioner.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "graph/topology.h"

namespace respect::exact {
namespace {

/// Minimum number of segments with per-segment weight <= bound (greedy).
/// Returns num_items+1 when a single item exceeds the bound.
int GreedySegments(const std::vector<std::int64_t>& weights,
                   std::int64_t bound) {
  int segments = 1;
  std::int64_t load = 0;
  for (const std::int64_t w : weights) {
    if (w > bound) return static_cast<int>(weights.size()) + 1;
    if (load + w > bound) {
      ++segments;
      load = w;
    } else {
      load += w;
    }
  }
  return segments;
}

}  // namespace

std::int64_t MinBottleneck(const std::vector<std::int64_t>& weights,
                           int num_stages) {
  if (weights.empty() || num_stages < 1) {
    throw std::invalid_argument("MinBottleneck: empty input");
  }
  std::int64_t lo = *std::max_element(weights.begin(), weights.end());
  std::int64_t hi = std::accumulate(weights.begin(), weights.end(),
                                    std::int64_t{0});
  while (lo < hi) {
    const std::int64_t mid = lo + (hi - lo) / 2;
    if (GreedySegments(weights, mid) <= num_stages) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

DpResult PartitionTopoOrder(const graph::Dag& dag,
                            const std::vector<graph::NodeId>& order,
                            int num_stages) {
  const int n = dag.NodeCount();
  if (n < num_stages) {
    throw std::invalid_argument("PartitionTopoOrder: |V| < num_stages");
  }
  if (!graph::IsTopologicalOrder(dag, order)) {
    throw std::invalid_argument(
        "PartitionTopoOrder: order is not topological for this graph");
  }

  std::vector<std::int64_t> weights(n);
  for (int i = 0; i < n; ++i) weights[i] = dag.Attr(order[i]).param_bytes;

  const std::int64_t bottleneck = MinBottleneck(weights, num_stages);

  // cross[p] = bytes crossing a cut placed between positions p-1 and p:
  // every producer at position < p whose last consumer sits at >= p.
  // Built with a difference array in O(V + E).
  const std::vector<int> pos = graph::OrderPositions(order, n);
  std::vector<std::int64_t> diff(n + 1, 0);
  for (graph::NodeId u = 0; u < n; ++u) {
    int last = pos[u];
    for (const graph::NodeId c : dag.Children(u)) {
      last = std::max(last, pos[c]);
    }
    if (last > pos[u]) {
      // crosses boundaries pos[u]+1 .. last
      diff[pos[u] + 1] += dag.Attr(u).output_bytes;
      diff[last + 1] -= dag.Attr(u).output_bytes;
    }
  }
  std::vector<std::int64_t> cross(n + 1, 0);
  for (int p = 1; p <= n; ++p) cross[p] = cross[p - 1] + diff[p];
  // Re-accumulate: cross[p] must be the sum of diff[1..p].
  std::int64_t acc = 0;
  for (int p = 0; p <= n; ++p) {
    acc += diff[p];
    cross[p] = acc;
  }

  std::vector<std::int64_t> prefix(n + 1, 0);
  for (int i = 0; i < n; ++i) prefix[i + 1] = prefix[i] + weights[i];

  // dp[k][i]: min total crossing bytes to cut the first i nodes into k
  // non-empty segments each weighing <= bottleneck.  parent[k][i] records
  // the previous cut.
  constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max() / 4;
  std::vector<std::vector<std::int64_t>> dp(
      num_stages + 1, std::vector<std::int64_t>(n + 1, kInf));
  std::vector<std::vector<int>> parent(num_stages + 1,
                                       std::vector<int>(n + 1, -1));
  dp[0][0] = 0;
  for (int k = 1; k <= num_stages; ++k) {
    for (int i = k; i <= n; ++i) {
      for (int j = k - 1; j < i; ++j) {
        if (dp[k - 1][j] >= kInf) continue;
        if (prefix[i] - prefix[j] > bottleneck) continue;
        // The cut before this segment sits at position j (no cost when j==0:
        // that is the pipeline input, not an inter-stage boundary).
        const std::int64_t cost = dp[k - 1][j] + (j > 0 ? cross[j] : 0);
        if (cost < dp[k][i]) {
          dp[k][i] = cost;
          parent[k][i] = j;
        }
      }
    }
  }
  if (dp[num_stages][n] >= kInf) {
    throw std::logic_error(
        "PartitionTopoOrder: no feasible partition at optimal bottleneck "
        "(internal inconsistency)");
  }

  DpResult result;
  result.schedule.num_stages = num_stages;
  result.schedule.stage.assign(n, 0);
  int i = n;
  for (int k = num_stages; k >= 1; --k) {
    const int j = parent[k][i];
    for (int p = j; p < i; ++p) {
      result.schedule.stage[order[p]] = k - 1;
    }
    i = j;
  }
  result.objective = sched::Evaluate(dag, result.schedule);
  return result;
}

DpResult PartitionDefaultOrder(const graph::Dag& dag, int num_stages) {
  const graph::TopoInfo topo = graph::AnalyzeTopology(dag);
  return PartitionTopoOrder(dag, topo.order, num_stages);
}

}  // namespace respect::exact
