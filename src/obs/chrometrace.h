// Chrome/Perfetto trace-event JSON export for live request traces and
// simulated pipeline timelines.
//
// Output is the Trace Event Format's JSON-object flavor
// ({"traceEvents":[...]}) using "X" complete events for spans and "i"
// instant events for markers — loadable in chrome://tracing and Perfetto.
//
// Fleet merging works at the text level: each shard renders its events as a
// *fragment* (a comma-separated run of event objects, no brackets) via
// AppendChromeTraceEvents, ships it over the wire as the kTraceData payload,
// and the coordinator concatenates fragments into one array with
// WriteChromeTraceFragments.  Because all shards on a host stamp events from
// the same CLOCK_MONOTONIC epoch, the merged timeline lines up without any
// clock handshake, and a forwarded request's spans share one trace_id across
// pid tracks.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "obs/trace.h"
#include "tpu/sim.h"

namespace respect::obs {

/// Renders `events` as a trace-event array *fragment* (no enclosing
/// brackets) appended to `out`.  `pid` labels the process track — pass the
/// OS pid for real traces so fleet shards land on distinct tracks.
void AppendChromeTraceEvents(std::string& out,
                             const std::vector<TraceEvent>& events,
                             std::uint32_t pid);

/// Writes a complete, self-contained chrometrace JSON object for one
/// process's events.
void WriteChromeTrace(std::ostream& os, const std::vector<TraceEvent>& events,
                      std::uint32_t pid);

/// Merges pre-rendered event fragments (from AppendChromeTraceEvents, local
/// or received via kTraceData) into one chrometrace JSON object.  Empty
/// fragments are skipped.
void WriteChromeTraceFragments(std::ostream& os,
                               const std::vector<std::string>& fragments);

/// Exports a simulated schedule timeline (SimulatePipeline with
/// record_timeline) as a chrometrace: one tid track per pipeline stage, an
/// "X" event per service interval, and — when `costs` is non-empty — nested
/// input-transfer / compute / output-transfer sub-events per interval from
/// the StageCost breakdown, so USB link time is visible next to compute.
void WriteSimChromeTrace(std::ostream& os,
                         const std::vector<tpu::SimTimelineEntry>& timeline,
                         const std::vector<tpu::StageCost>& costs);

/// Escapes a string for embedding in a JSON string literal.
std::string JsonEscape(const std::string& raw);

}  // namespace respect::obs
