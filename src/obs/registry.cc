#include "obs/registry.h"

#include <algorithm>
#include <cmath>

namespace respect::obs {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  buckets_.resize(bounds_.size() + 1);  // + overflow
}

void Histogram::Observe(double value) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  buckets_[static_cast<std::size_t>(it - bounds_.begin())].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // Relaxed CAS loop: monitoring-grade sum, no fences on the hot path.
  double expected = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(expected, expected + value,
                                     std::memory_order_relaxed)) {
  }
}

std::uint64_t Histogram::Count() const noexcept {
  return count_.load(std::memory_order_relaxed);
}

double Histogram::Sum() const noexcept {
  return sum_.load(std::memory_order_relaxed);
}

double Histogram::Quantile(double q) const noexcept {
  q = std::min(1.0, std::max(0.0, q));
  std::uint64_t total = 0;
  std::vector<std::uint64_t> counts(buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  if (total == 0) return 0.0;
  const double rank = q * static_cast<double>(total);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    cumulative += counts[i];
    if (static_cast<double>(cumulative) >= rank) {
      if (i >= bounds_.size()) {
        // Overflow bucket: the largest finite bound is the best statement
        // we can make.
        return bounds_.empty() ? 0.0 : bounds_.back();
      }
      const double upper = bounds_[i];
      const double lower = i == 0 ? 0.0 : bounds_[i - 1];
      const std::uint64_t below = cumulative - counts[i];
      const double fraction =
          counts[i] == 0
              ? 1.0
              : (rank - static_cast<double>(below)) /
                    static_cast<double>(counts[i]);
      return lower + (upper - lower) * std::min(1.0, std::max(0.0, fraction));
    }
  }
  return bounds_.empty() ? 0.0 : bounds_.back();
}

std::vector<double> Histogram::LatencyBoundsSeconds() {
  return {50e-6, 100e-6, 250e-6, 500e-6, 1e-3, 2.5e-3, 5e-3, 10e-3,
          25e-3, 50e-3,  100e-3, 250e-3, 0.5,  1.0,    2.5,  5.0,
          10.0,  30.0};
}

Counter& Registry::GetCounter(std::string name, std::string help) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& entry : counters_) {
    if (entry.name == name) return entry.metric;
  }
  counters_.emplace_back(std::move(name), std::move(help));
  return counters_.back().metric;
}

Gauge& Registry::GetGauge(std::string name, std::string help) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& entry : gauges_) {
    if (entry.name == name) return entry.metric;
  }
  gauges_.emplace_back(std::move(name), std::move(help));
  return gauges_.back().metric;
}

Histogram& Registry::GetHistogram(std::string name, std::string help,
                                  std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& entry : histograms_) {
    if (entry.name == name) return entry.metric;
  }
  if (bounds.empty()) bounds = Histogram::LatencyBoundsSeconds();
  histograms_.emplace_back(std::move(name), std::move(help),
                           std::move(bounds));
  return histograms_.back().metric;
}

namespace {

void WriteHeader(std::ostream& os, const std::string& name,
                 const std::string& help, const char* type) {
  if (!help.empty()) os << "# HELP " << name << ' ' << help << '\n';
  os << "# TYPE " << name << ' ' << type << '\n';
}

}  // namespace

void Registry::RenderPrometheus(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& entry : counters_) {
    WriteHeader(os, entry.name, entry.help, "counter");
    os << entry.name << ' ' << entry.metric.load() << '\n';
  }
  for (const auto& entry : gauges_) {
    WriteHeader(os, entry.name, entry.help, "gauge");
    os << entry.name << ' ' << entry.metric.Value() << '\n';
  }
  for (const auto& entry : histograms_) {
    WriteHeader(os, entry.name, entry.help, "histogram");
    const auto& bounds = entry.metric.Bounds();
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < bounds.size(); ++i) {
      cumulative += entry.metric.BucketCount(i);
      os << entry.name << "_bucket{le=\"" << bounds[i] << "\"} " << cumulative
         << '\n';
    }
    cumulative += entry.metric.BucketCount(bounds.size());
    os << entry.name << "_bucket{le=\"+Inf\"} " << cumulative << '\n';
    os << entry.name << "_sum " << entry.metric.Sum() << '\n';
    os << entry.name << "_count " << entry.metric.Count() << '\n';
  }
}

}  // namespace respect::obs
