#include "obs/chrometrace.h"

#include <cstdio>

namespace respect::obs {

std::string JsonEscape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

void AppendEvent(std::string& out, const TraceEvent& event,
                 std::uint32_t pid, bool& first) {
  if (!first) out += ',';
  first = false;

  std::string name = event.name != nullptr ? event.name : "?";
  if (event.detail != nullptr && event.detail_len > 0) {
    name += ':';
    name.append(event.detail, event.detail_len);
  }

  char buf[160];
  out += "{\"name\":\"";
  out += JsonEscape(name);
  out += "\",\"cat\":\"respect\"";
  if (event.dur_us < 0) {
    std::snprintf(buf, sizeof(buf),
                  ",\"ph\":\"i\",\"s\":\"t\",\"ts\":%lld",
                  static_cast<long long>(event.start_us));
  } else {
    std::snprintf(buf, sizeof(buf), ",\"ph\":\"X\",\"ts\":%lld,\"dur\":%lld",
                  static_cast<long long>(event.start_us),
                  static_cast<long long>(event.dur_us));
  }
  out += buf;
  std::snprintf(buf, sizeof(buf),
                ",\"pid\":%u,\"tid\":%u,\"args\":{\"trace_id\":%llu,"
                "\"depth\":%u}}",
                pid, event.tid,
                static_cast<unsigned long long>(event.trace_id), event.depth);
  out += buf;
}

}  // namespace

void AppendChromeTraceEvents(std::string& out,
                             const std::vector<TraceEvent>& events,
                             std::uint32_t pid) {
  bool first = true;
  for (const TraceEvent& event : events) {
    AppendEvent(out, event, pid, first);
  }
}

void WriteChromeTrace(std::ostream& os, const std::vector<TraceEvent>& events,
                      std::uint32_t pid) {
  std::string fragment;
  AppendChromeTraceEvents(fragment, events, pid);
  WriteChromeTraceFragments(os, {fragment});
}

void WriteChromeTraceFragments(std::ostream& os,
                               const std::vector<std::string>& fragments) {
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const std::string& fragment : fragments) {
    if (fragment.empty()) continue;
    if (!first) os << ',';
    first = false;
    os << fragment;
  }
  os << "],\"displayTimeUnit\":\"ms\"}\n";
}

namespace {

void AppendSimEvent(std::ostream& os, bool& first, const char* name,
                    int inference, int stage, double ts_us, double dur_us) {
  if (!first) os << ',';
  first = false;
  char buf[224];
  std::snprintf(buf, sizeof(buf),
                "{\"name\":\"%s\",\"cat\":\"sim\",\"ph\":\"X\","
                "\"ts\":%.3f,\"dur\":%.3f,\"pid\":0,\"tid\":%d,"
                "\"args\":{\"inference\":%d}}",
                name, ts_us, dur_us, stage, inference);
  os << buf;
}

}  // namespace

void WriteSimChromeTrace(std::ostream& os,
                         const std::vector<tpu::SimTimelineEntry>& timeline,
                         const std::vector<tpu::StageCost>& costs) {
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const tpu::SimTimelineEntry& entry : timeline) {
    char name[48];
    std::snprintf(name, sizeof(name), "inference %d", entry.inference);
    AppendSimEvent(os, first, name, entry.inference, entry.stage,
                   entry.start_us, entry.finish_us - entry.start_us);
    if (entry.stage >= 0 && entry.stage < static_cast<int>(costs.size())) {
      // Break the interval into its StageCost phases (the sim's service
      // model: input transfer, then max(compute, param stream), then output
      // transfer) on a nested track so link time reads next to compute.
      const tpu::StageCost& cost = costs[entry.stage];
      double cursor = entry.start_us;
      if (cost.input_xfer_us > 0) {
        AppendSimEvent(os, first, "input_xfer", entry.inference, entry.stage,
                       cursor, cost.input_xfer_us);
        cursor += cost.input_xfer_us;
      }
      const double exec =
          cost.compute_us > cost.param_stream_us ? cost.compute_us
                                                 : cost.param_stream_us;
      if (exec > 0) {
        AppendSimEvent(os, first,
                       cost.param_stream_us > cost.compute_us
                           ? "param_stream"
                           : "compute",
                       entry.inference, entry.stage, cursor, exec);
        cursor += exec;
      }
      if (cost.output_xfer_us > 0) {
        AppendSimEvent(os, first, "output_xfer", entry.inference, entry.stage,
                       cursor, cost.output_xfer_us);
      }
    }
  }
  os << "],\"displayTimeUnit\":\"ms\"}\n";
}

}  // namespace respect::obs
