// Unified metrics registry: counters, gauges, and fixed-bucket latency
// histograms with Prometheus text exposition.
//
// Design constraints, in order:
//  1. Zero call-site churn.  The serve/store/net layers already increment
//     `std::atomic<std::uint64_t>` counters with fetch_add/load; obs::Counter
//     exposes that exact API so a member declaration swap
//     (`std::atomic<std::uint64_t> hits_{0};` ->
//      `obs::Counter& hits_ = registry_.GetCounter("respect_serve_hits_total",
//      "...");`) recompiles every existing increment unchanged.
//  2. Instance-scoped, not global.  Tests assert exact counter values per
//     service instance, so each CompileService/DiskStore owns (or borrows)
//     a Registry; fleet shards get one unified exposition page by sharing
//     the service's registry across layers.
//  3. Stable addresses.  Metrics live in std::deque so references handed to
//     members never move; GetCounter on an existing name returns the same
//     object (idempotent registration).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <initializer_list>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace respect::obs {

/// Monotonic counter with the std::atomic<uint64_t> surface the serving
/// layers already use.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  std::uint64_t fetch_add(
      std::uint64_t n,
      std::memory_order order = std::memory_order_relaxed) noexcept {
    return value_.fetch_add(n, order);
  }
  std::uint64_t load(
      std::memory_order order = std::memory_order_relaxed) const noexcept {
    return value_.load(order);
  }
  void store(std::uint64_t v,
             std::memory_order order = std::memory_order_relaxed) noexcept {
    value_.store(v, order);
  }
  std::uint64_t operator++() noexcept { return fetch_add(1) + 1; }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins gauge (doubles, e.g. queue depth or utilization).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(double v) noexcept {
    value_.store(v, std::memory_order_relaxed);
  }
  double Value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-upper-bound latency histogram (cumulative buckets, Prometheus
/// style) with interpolated quantile extraction.  Observe is lock-free;
/// Quantile/Count/Sum read relaxed snapshots (monitoring-grade accuracy).
class Histogram {
 public:
  /// `bounds` are inclusive upper bounds in ascending order; an implicit
  /// +inf bucket catches the rest.
  explicit Histogram(std::vector<double> bounds);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(double value) noexcept;

  std::uint64_t Count() const noexcept;
  double Sum() const noexcept;

  /// Interpolated quantile (q in [0,1]) from bucket counts; returns 0 when
  /// empty.  Values in the overflow bucket report the largest finite bound.
  double Quantile(double q) const noexcept;

  const std::vector<double>& Bounds() const noexcept { return bounds_; }
  std::uint64_t BucketCount(std::size_t i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  /// Default bounds for request/solve latencies in seconds: 50us .. 30s.
  static std::vector<double> LatencyBoundsSeconds();

 private:
  std::vector<double> bounds_;
  std::deque<std::atomic<std::uint64_t>> buckets_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Named metric registry.  GetCounter/GetGauge/GetHistogram are idempotent:
/// the first call registers, later calls return the same instance (help text
/// from the first registration wins).  All returned references stay valid
/// for the registry's lifetime.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& GetCounter(std::string name, std::string help = "");
  Gauge& GetGauge(std::string name, std::string help = "");
  /// Empty `bounds` selects Histogram::LatencyBoundsSeconds().
  Histogram& GetHistogram(std::string name, std::string help = "",
                          std::vector<double> bounds = {});

  /// Renders Prometheus text exposition format (HELP/TYPE + samples);
  /// histograms emit cumulative `_bucket{le=...}` plus `_sum`/`_count`.
  void RenderPrometheus(std::ostream& os) const;

 private:
  template <typename T>
  struct Entry {
    std::string name;
    std::string help;
    T metric;
    template <typename... Args>
    Entry(std::string n, std::string h, Args&&... args)
        : name(std::move(n)), help(std::move(h)),
          metric(std::forward<Args>(args)...) {}
  };

  mutable std::mutex mu_;
  std::deque<Entry<Counter>> counters_;
  std::deque<Entry<Gauge>> gauges_;
  std::deque<Entry<Histogram>> histograms_;
};

}  // namespace respect::obs
