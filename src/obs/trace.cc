#include "obs/trace.h"

#include <chrono>
#include <memory>
#include <mutex>

namespace respect::obs {
namespace internal {

std::atomic<int> g_armed{0};

namespace {

// Per-thread SPSC event ring.  The owning thread is the only writer; Drain
// (any thread, serialized by the registry mutex) is the only reader.  Rings
// are shared_ptr-owned by both the thread_local slot and the global registry
// so a thread's events survive its exit until the next Drain.
struct Ring {
  std::vector<TraceEvent> slots{Tracer::kRingCapacity};
  std::atomic<std::uint64_t> head{0};  // next write position (producer)
  std::atomic<std::uint64_t> read{0};  // next read position (consumer)
  std::atomic<std::uint64_t> dropped{0};
  std::uint32_t tid = 0;

  void Push(const TraceEvent& event) {
    const std::uint64_t h = head.load(std::memory_order_relaxed);
    if (h - read.load(std::memory_order_acquire) >= slots.size()) {
      dropped.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    slots[h % slots.size()] = event;
    head.store(h + 1, std::memory_order_release);
  }

  void DrainInto(std::vector<TraceEvent>& out) {
    const std::uint64_t h = head.load(std::memory_order_acquire);
    for (std::uint64_t r = read.load(std::memory_order_relaxed); r < h; ++r) {
      TraceEvent event = slots[r % slots.size()];
      event.tid = tid;
      out.push_back(event);
    }
    read.store(h, std::memory_order_release);
  }
};

struct RingRegistry {
  std::mutex mu;
  std::vector<std::shared_ptr<Ring>> rings;
  std::uint32_t next_tid = 0;
};

RingRegistry& Registry() {
  static RingRegistry* registry = new RingRegistry();  // leaked: outlives TLS
  return *registry;
}

Ring& ThreadRing() {
  thread_local std::shared_ptr<Ring> ring = [] {
    auto fresh = std::make_shared<Ring>();
    RingRegistry& registry = Registry();
    std::lock_guard<std::mutex> lock(registry.mu);
    fresh->tid = registry.next_tid++;
    registry.rings.push_back(fresh);
    return fresh;
  }();
  return *ring;
}

thread_local std::uint64_t t_trace_id = 0;
thread_local std::uint32_t t_span_depth = 0;

std::atomic<std::uint64_t> g_next_trace_id{1};

}  // namespace
}  // namespace internal

std::int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

void Tracer::Start() {
  internal::g_armed.store(1, std::memory_order_relaxed);
}

void Tracer::Stop() {
  internal::g_armed.store(0, std::memory_order_relaxed);
}

std::vector<TraceEvent> Tracer::Drain() {
  std::vector<TraceEvent> out;
  internal::RingRegistry& registry = internal::Registry();
  std::lock_guard<std::mutex> lock(registry.mu);
  for (const auto& ring : registry.rings) {
    ring->DrainInto(out);
  }
  return out;
}

std::uint64_t Tracer::Dropped() const {
  std::uint64_t total = 0;
  internal::RingRegistry& registry = internal::Registry();
  std::lock_guard<std::mutex> lock(registry.mu);
  for (const auto& ring : registry.rings) {
    total += ring->dropped.load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t Tracer::MintTraceId() {
  return internal::g_next_trace_id.fetch_add(1, std::memory_order_relaxed);
}

std::uint32_t Tracer::ThreadSpanDepth() { return internal::t_span_depth; }

void Tracer::Record(const TraceEvent& event) {
  internal::ThreadRing().Push(event);
}

std::uint64_t CurrentTraceId() { return internal::t_trace_id; }

ScopedTraceId::ScopedTraceId(std::uint64_t id)
    : previous_(internal::t_trace_id) {
  internal::t_trace_id = id;
}

ScopedTraceId::~ScopedTraceId() { internal::t_trace_id = previous_; }

ScopedSpan::ScopedSpan(const char* name, const char* detail,
                       std::uint32_t detail_len) noexcept
    : name_(nullptr), detail_(detail), detail_len_(detail_len), depth_(0),
      start_us_(0) {
  if (!Armed()) return;  // the disarmed fast path: one relaxed load
  name_ = name;
  depth_ = internal::t_span_depth++;
  start_us_ = NowMicros();
}

ScopedSpan::~ScopedSpan() {
  if (name_ == nullptr) return;
  --internal::t_span_depth;
  TraceEvent event;
  event.name = name_;
  event.detail = detail_;
  event.detail_len = detail_len_;
  event.trace_id = internal::t_trace_id;
  event.start_us = start_us_;
  event.dur_us = NowMicros() - start_us_;
  event.depth = depth_;
  Tracer::Global().Record(event);
}

void RecordSpan(const char* name, std::int64_t start_us, std::int64_t end_us,
                std::uint64_t trace_id, const char* detail,
                std::uint32_t detail_len) {
  if (!Armed()) return;
  TraceEvent event;
  event.name = name;
  event.detail = detail;
  event.detail_len = detail_len;
  event.trace_id = trace_id;
  event.start_us = start_us;
  event.dur_us = end_us > start_us ? end_us - start_us : 0;
  event.depth = internal::t_span_depth;
  Tracer::Global().Record(event);
}

void RecordInstant(const char* name, const char* detail,
                   std::uint32_t detail_len) {
  if (!Armed()) return;
  TraceEvent event;
  event.name = name;
  event.detail = detail;
  event.detail_len = detail_len;
  event.trace_id = internal::t_trace_id;
  event.start_us = NowMicros();
  event.dur_us = -1;
  event.depth = internal::t_span_depth;
  Tracer::Global().Record(event);
}

}  // namespace respect::obs
