// Tracing: per-request spans on lock-free per-thread rings, zero-cost when
// disarmed.
//
// Production code wraps its interesting intervals in OBS_SPAN("site") — an
// RAII ScopedSpan stamped from the monotonic clock — and tags whole request
// flows with a trace id (ScopedTraceId) minted at admission.  Tests and the
// CLI arm the tracer at runtime:
//
//   obs::Tracer::Global().Start();
//   ... traffic ...
//   std::vector<obs::TraceEvent> events = obs::Tracer::Global().Drain();
//   obs::WriteChromeTrace(os, events, getpid());   // obs/chrometrace.h
//
// Cost model (the core::failpoint discipline): when the tracer is stopped,
// OBS_SPAN is one relaxed atomic load in the constructor and one branch in
// the destructor.  When RESPECT_OBS is compiled out (CMake -DRESPECT_OBS=OFF)
// the macro expands to nothing.
//
// Threading: each thread owns one single-producer ring; the emitting thread
// is the only writer, and Drain() is the only consumer (release/acquire on
// the ring cursors — safe under TSan by construction).  A full ring drops
// the newest event and counts it (Dropped()) instead of blocking or tearing;
// tracing never backpressures the serving path.
//
// Span semantics: spans close in LIFO order per thread (RAII), so every
// drained event already carries its nesting depth and a well-formed tree is
// structural — an unclosed span is a span that never drained, visible as a
// non-zero ThreadSpanDepth().  Events record wall intervals on the steady
// clock in microseconds since the process-shared CLOCK_MONOTONIC epoch, so
// fleet shards on one host merge onto a single timeline.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

namespace respect::obs {

/// One closed span (dur_us >= 0) or instant marker (dur_us < 0), POD.
/// `name` (and optional `detail`, e.g. an engine name) point at process-
/// lifetime storage: string literals, or registry-canonical names.
struct TraceEvent {
  const char* name = nullptr;
  const char* detail = nullptr;     // may be null
  std::uint32_t detail_len = 0;
  std::uint32_t tid = 0;            // small per-process thread index
  std::uint64_t trace_id = 0;       // 0 = not part of a request flow
  std::int64_t start_us = 0;        // steady-clock micros (see file comment)
  std::int64_t dur_us = 0;          // < 0 marks an instant event
  std::uint32_t depth = 0;          // span-stack depth at open (root = 0)
};

namespace internal {
// The macro's fast-path gate; nonzero while the tracer runs.
extern std::atomic<int> g_armed;
}  // namespace internal

/// True while tracing is armed (fast path for OBS_SPAN).
inline bool Armed() noexcept {
  return internal::g_armed.load(std::memory_order_relaxed) != 0;
}

class Tracer {
 public:
  /// Events each thread's ring holds before dropping the newest.
  static constexpr std::size_t kRingCapacity = 1 << 13;

  [[nodiscard]] static Tracer& Global();

  /// Arms span recording (idempotent).  Events emitted while stopped are
  /// not recorded.
  void Start();

  /// Disarms recording; already-recorded events stay drainable.
  void Stop();

  /// Moves every recorded event out of every thread's ring, oldest-first
  /// per thread.  Safe concurrently with emitting threads (each ring is
  /// SPSC: its owner writes, Drain reads) but not with another Drain.
  [[nodiscard]] std::vector<TraceEvent> Drain();

  /// Events dropped on full rings since construction.
  [[nodiscard]] std::uint64_t Dropped() const;

  /// Fresh nonzero request trace id (process-local mint; fleet-unique
  /// enough because one admission point mints per flow).
  [[nodiscard]] std::uint64_t MintTraceId();

  /// The calling thread's open-span count — 0 once every RAII span closed
  /// (the well-formed-tree assertion hook for tests).
  [[nodiscard]] static std::uint32_t ThreadSpanDepth();

  // Internal: called by ScopedSpan / RecordSpan.
  void Record(const TraceEvent& event);

 private:
  Tracer() = default;
};

/// The calling thread's current request trace id (0 outside any flow).
[[nodiscard]] std::uint64_t CurrentTraceId();

/// RAII trace-id context: spans opened inside carry `id`; the previous id
/// is restored on destruction (nesting-safe).
class ScopedTraceId {
 public:
  explicit ScopedTraceId(std::uint64_t id);
  ~ScopedTraceId();
  ScopedTraceId(const ScopedTraceId&) = delete;
  ScopedTraceId& operator=(const ScopedTraceId&) = delete;

 private:
  std::uint64_t previous_;
};

/// RAII span.  Use through OBS_SPAN / OBS_SPAN_DETAIL, not directly: the
/// macro is what compiles away under -DRESPECT_OBS=OFF.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) noexcept
      : ScopedSpan(name, nullptr, 0) {}
  ScopedSpan(const char* name, const char* detail,
             std::uint32_t detail_len) noexcept;
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_;    // null when the tracer was disarmed at open
  const char* detail_;
  std::uint32_t detail_len_;
  std::uint32_t depth_;
  std::int64_t start_us_;
};

/// Records an explicitly-timed span (for intervals that cross threads, e.g.
/// enqueue -> pop: the popping thread records the whole wait).  Timestamps
/// are steady-clock micros (obs::NowMicros); `trace_id` tags the flow.
/// No-op while disarmed.
void RecordSpan(const char* name, std::int64_t start_us, std::int64_t end_us,
                std::uint64_t trace_id, const char* detail = nullptr,
                std::uint32_t detail_len = 0);

/// Records an instant marker at now, on the current thread and trace id
/// (e.g. a breaker short-circuit).  No-op while disarmed.
void RecordInstant(const char* name, const char* detail = nullptr,
                   std::uint32_t detail_len = 0);

/// Steady-clock microseconds (the event timebase).
[[nodiscard]] std::int64_t NowMicros();

}  // namespace respect::obs

#if defined(RESPECT_OBS) && RESPECT_OBS
#define RESPECT_OBS_CONCAT_INNER(a, b) a##b
#define RESPECT_OBS_CONCAT(a, b) RESPECT_OBS_CONCAT_INNER(a, b)
/// Opens a span named `site` (a string literal) for the enclosing scope.
#define OBS_SPAN(site) \
  ::respect::obs::ScopedSpan RESPECT_OBS_CONCAT(obs_span_, __LINE__) { (site) }
/// Same, with a process-lifetime detail string (e.g. an engine name).
#define OBS_SPAN_DETAIL(site, detail_ptr, detail_len)                     \
  ::respect::obs::ScopedSpan RESPECT_OBS_CONCAT(obs_span_, __LINE__) {    \
    (site), (detail_ptr), static_cast<std::uint32_t>(detail_len)          \
  }
#else
#define OBS_SPAN(site) \
  do {                 \
  } while (false)
#define OBS_SPAN_DETAIL(site, detail_ptr, detail_len) \
  do {                                                \
  } while (false)
#endif
