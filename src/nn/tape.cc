#include "nn/tape.h"

#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

namespace respect::nn {

Ref Tape::Push(Tensor value, std::vector<Ref> inputs,
               std::function<void(Tape&, Node&)> backward) {
  for (const Ref r : inputs) {
    if (r < 0 || r >= NodeCount()) {
      throw std::invalid_argument("Tape: input ref out of range");
    }
  }
  Node node;
  node.value = std::move(value);
  node.inputs = std::move(inputs);
  node.backward = std::move(backward);
  nodes_.push_back(std::move(node));
  return NodeCount() - 1;
}

Ref Tape::Constant(Tensor value) {
  return Push(std::move(value), {}, nullptr);
}

Ref Tape::Param(Tensor value, Tensor* grad_sink) {
  if (grad_sink == nullptr) {
    throw std::invalid_argument("Tape::Param: null grad sink");
  }
  if (grad_sink->Rows() != value.Rows() || grad_sink->Cols() != value.Cols()) {
    throw std::invalid_argument("Tape::Param: grad sink shape mismatch");
  }
  const Ref r = Push(std::move(value), {}, nullptr);
  nodes_[r].grad_sink = grad_sink;
  return r;
}

Ref Tape::MatMul(Ref a, Ref b) {
  Tensor value = nn::MatMul(Value(a), Value(b));
  return Push(std::move(value), {a, b}, [](Tape& t, Node& self) {
    Node& na = t.nodes_[self.inputs[0]];
    Node& nb = t.nodes_[self.inputs[1]];
    na.grad.Accumulate(nn::MatMul(self.grad, nn::Transpose(nb.value)));
    nb.grad.Accumulate(nn::MatMul(nn::Transpose(na.value), self.grad));
  });
}

Ref Tape::Add(Ref a, Ref b) {
  Tensor value = nn::Add(Value(a), Value(b));
  return Push(std::move(value), {a, b}, [](Tape& t, Node& self) {
    t.nodes_[self.inputs[0]].grad.Accumulate(self.grad);
    t.nodes_[self.inputs[1]].grad.Accumulate(self.grad);
  });
}

Ref Tape::Mul(Ref a, Ref b) {
  Tensor value = nn::Mul(Value(a), Value(b));
  return Push(std::move(value), {a, b}, [](Tape& t, Node& self) {
    Node& na = t.nodes_[self.inputs[0]];
    Node& nb = t.nodes_[self.inputs[1]];
    na.grad.Accumulate(nn::Mul(self.grad, nb.value));
    nb.grad.Accumulate(nn::Mul(self.grad, na.value));
  });
}

Ref Tape::Scale(Ref a, float s) {
  Tensor value = nn::Scale(Value(a), s);
  return Push(std::move(value), {a}, [s](Tape& t, Node& self) {
    t.nodes_[self.inputs[0]].grad.Accumulate(nn::Scale(self.grad, s));
  });
}

Ref Tape::Tanh(Ref a) {
  Tensor value = nn::Tanh(Value(a));
  return Push(std::move(value), {a}, [](Tape& t, Node& self) {
    Node& na = t.nodes_[self.inputs[0]];
    Tensor d = self.grad;
    for (std::int64_t i = 0; i < d.Size(); ++i) {
      const float y = self.value.Data()[i];
      d.Data()[i] *= 1.0f - y * y;
    }
    na.grad.Accumulate(d);
  });
}

Ref Tape::Sigmoid(Ref a) {
  Tensor value = nn::Sigmoid(Value(a));
  return Push(std::move(value), {a}, [](Tape& t, Node& self) {
    Node& na = t.nodes_[self.inputs[0]];
    Tensor d = self.grad;
    for (std::int64_t i = 0; i < d.Size(); ++i) {
      const float y = self.value.Data()[i];
      d.Data()[i] *= y * (1.0f - y);
    }
    na.grad.Accumulate(d);
  });
}

Ref Tape::AddBroadcastCol(Ref mat, Ref col) {
  Tensor value = nn::AddBroadcastCol(Value(mat), Value(col));
  return Push(std::move(value), {mat, col}, [](Tape& t, Node& self) {
    Node& nm = t.nodes_[self.inputs[0]];
    Node& nc = t.nodes_[self.inputs[1]];
    nm.grad.Accumulate(self.grad);
    for (int i = 0; i < self.grad.Rows(); ++i) {
      float s = 0.0f;
      for (int j = 0; j < self.grad.Cols(); ++j) s += self.grad.At(i, j);
      nc.grad.At(i, 0) += s;
    }
  });
}

Ref Tape::ConcatCols(const std::vector<Ref>& cols) {
  std::vector<Tensor> values;
  values.reserve(cols.size());
  for (const Ref r : cols) values.push_back(Value(r));
  Tensor value = nn::ConcatCols(values);
  return Push(std::move(value), cols, [](Tape& t, Node& self) {
    for (int j = 0; j < static_cast<int>(self.inputs.size()); ++j) {
      Node& nc = t.nodes_[self.inputs[j]];
      for (int i = 0; i < self.grad.Rows(); ++i) {
        nc.grad.At(i, 0) += self.grad.At(i, j);
      }
    }
  });
}

Ref Tape::SliceRows(Ref a, int r0, int r1) {
  Tensor value = nn::SliceRows(Value(a), r0, r1);
  return Push(std::move(value), {a}, [r0](Tape& t, Node& self) {
    Node& na = t.nodes_[self.inputs[0]];
    for (int i = 0; i < self.grad.Rows(); ++i) {
      for (int j = 0; j < self.grad.Cols(); ++j) {
        na.grad.At(r0 + i, j) += self.grad.At(i, j);
      }
    }
  });
}

Ref Tape::SliceCols(Ref a, int c0, int c1) {
  Tensor value = nn::SliceCols(Value(a), c0, c1);
  return Push(std::move(value), {a}, [c0](Tape& t, Node& self) {
    Node& na = t.nodes_[self.inputs[0]];
    for (int i = 0; i < self.grad.Rows(); ++i) {
      for (int j = 0; j < self.grad.Cols(); ++j) {
        na.grad.At(i, c0 + j) += self.grad.At(i, j);
      }
    }
  });
}

Ref Tape::Transpose(Ref a) {
  Tensor value = nn::Transpose(Value(a));
  return Push(std::move(value), {a}, [](Tape& t, Node& self) {
    t.nodes_[self.inputs[0]].grad.Accumulate(nn::Transpose(self.grad));
  });
}

Ref Tape::MaskedSoftmax(Ref logits, std::vector<bool> valid) {
  Tensor value = nn::MaskedSoftmax(Value(logits), valid);
  return Push(std::move(value), {logits},
              [valid = std::move(valid)](Tape& t, Node& self) {
                Node& nl = t.nodes_[self.inputs[0]];
                // ds_j = p_j * (g_j - sum_k g_k p_k) over valid entries.
                float dot = 0.0f;
                for (int j = 0; j < self.value.Cols(); ++j) {
                  dot += self.grad.At(0, j) * self.value.At(0, j);
                }
                for (int j = 0; j < self.value.Cols(); ++j) {
                  if (!valid[j]) continue;
                  nl.grad.At(0, j) +=
                      self.value.At(0, j) * (self.grad.At(0, j) - dot);
                }
              });
}

Ref Tape::PickLogSoftmax(Ref logits, std::vector<bool> valid, int pick) {
  const Tensor& l = Value(logits);
  if (l.Rows() != 1 || pick < 0 || pick >= l.Cols() || !valid[pick]) {
    throw std::invalid_argument("PickLogSoftmax: bad pick or shape");
  }
  const Tensor probs = nn::MaskedSoftmax(l, valid);
  Tensor value(1, 1);
  value.At(0, 0) = std::log(std::max(probs.At(0, pick), 1e-30f));
  return Push(std::move(value), {logits},
              [valid = std::move(valid), pick, probs](Tape& t, Node& self) {
                Node& nl = t.nodes_[self.inputs[0]];
                const float g = self.grad.At(0, 0);
                for (int j = 0; j < probs.Cols(); ++j) {
                  if (!valid[j]) continue;
                  const float delta = (j == pick) ? 1.0f : 0.0f;
                  nl.grad.At(0, j) += g * (delta - probs.At(0, j));
                }
              });
}

Ref Tape::Sum(Ref a) {
  const Tensor& v = Value(a);
  Tensor value(1, 1);
  float s = 0.0f;
  for (std::int64_t i = 0; i < v.Size(); ++i) s += v.Data()[i];
  value.At(0, 0) = s;
  return Push(std::move(value), {a}, [](Tape& t, Node& self) {
    Node& na = t.nodes_[self.inputs[0]];
    const float g = self.grad.At(0, 0);
    for (std::int64_t i = 0; i < na.grad.Size(); ++i) na.grad.Data()[i] += g;
  });
}

std::uint64_t Tape::NextId() {
  static std::uint64_t next = 0;
  return ++next;
}

const Tensor& Tape::Value(Ref r) const {
  if (r < 0 || r >= NodeCount()) {
    throw std::invalid_argument("Tape::Value: ref out of range");
  }
  return nodes_[r].value;
}

const Tensor& Tape::Grad(Ref r) const {
  if (!backward_run_) {
    throw std::logic_error("Tape::Grad: Backward() has not run");
  }
  return nodes_[r].grad;
}

void Tape::Backward(Ref result, float seed) {
  if (backward_run_) {
    throw std::logic_error("Tape::Backward: may only run once per tape");
  }
  const Tensor& rv = Value(result);
  if (rv.Rows() != 1 || rv.Cols() != 1) {
    throw std::invalid_argument("Tape::Backward: result must be scalar (1,1)");
  }
  for (Node& node : nodes_) {
    node.grad = Tensor::Zeros(node.value.Rows(), node.value.Cols());
  }
  nodes_[result].grad.At(0, 0) = seed;
  for (Ref r = NodeCount() - 1; r >= 0; --r) {
    Node& node = nodes_[r];
    if (node.backward) node.backward(*this, node);
    if (node.grad_sink != nullptr) node.grad_sink->Accumulate(node.grad);
  }
  backward_run_ = true;
}

}  // namespace respect::nn
