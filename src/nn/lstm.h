// LSTM cell with twin execution paths: a tape-recorded path for training
// (gradients flow through BPTT) and a value-only path for inference.
//
// Standard formulation, gate order [i f g o]:
//   z = Wx·x + Wh·h + b;  i,f,o = σ(z…);  g = tanh(z…)
//   c' = f ⊙ c + i ⊙ g;   h' = o ⊙ tanh(c')
#pragma once

#include <random>
#include <string>

#include "nn/params.h"
#include "nn/tape.h"
#include "nn/tensor.h"

namespace respect::nn {

/// One LSTM cell; weights live in a ParamStore under `prefix`.
class LstmCell {
 public:
  /// Creates (or rebinds to) parameters `prefix`.{Wx,Wh,b} in `store`.
  LstmCell(ParamStore& store, std::string prefix, int input_dim,
           int hidden_dim, std::mt19937_64& rng);

  [[nodiscard]] int HiddenDim() const { return hidden_dim_; }
  [[nodiscard]] int InputDim() const { return input_dim_; }

  /// Value-only state (inference path).
  struct State {
    Tensor h;  // (hidden, 1)
    Tensor c;  // (hidden, 1)
  };

  /// Tape-recorded state (training path).
  struct TapeState {
    Ref h = -1;
    Ref c = -1;
  };

  [[nodiscard]] State InitialState() const;
  [[nodiscard]] TapeState InitialState(Tape& tape) const;

  /// Value-only state for B lock-stepped sequences (batched inference).
  /// Row-major (hidden, B): h.Data()[k*B + g] is element k of graph g's
  /// hidden state, so the per-k inner loop over the batch is contiguous.
  struct BatchState {
    Tensor h;  // (hidden, B)
    Tensor c;  // (hidden, B)
  };

  /// One step without gradient recording.
  [[nodiscard]] State Step(const Tensor& x, const State& prev) const;

  /// Fused allocation-free step for the inference hot path: updates
  /// `state.h` / `state.c` ((hidden, 1)) in place.  The input contribution
  /// Wx·x must be precomputed — `zx` is a (4·hidden, *) matrix whose column
  /// `zx_col` holds Wx·x for this step, so callers hoist the input
  /// projection for a whole sequence into one GEMM and each step pays only
  /// the Wh·h GEMV.  `gates` is a caller-owned (4·hidden, 1) scratch.
  /// Bit-identical to Step() given zx_col == MatMul(Wx, x) column.
  void StepInto(const Tensor& zx, int zx_col, Tensor& gates,
                State& state) const;

  /// The (4·hidden, input) input weight Wx, for hoisting Wx·X out of step
  /// loops (see StepInto).
  [[nodiscard]] const Tensor& InputWeight() const;

  /// Batched StepInto: advances `batch` independent sequences one step,
  /// turning the per-step Wh·h GEMV into a (4d, d)×(d, B) GEMM whose inner
  /// loop runs contiguously across the batch.  `zx_cols[g]` selects graph
  /// g's precomputed Wx·x column in `zx` (columns may repeat — e.g. every
  /// graph pointing at the shared decoder-start column).  `gates` is a
  /// caller-owned (4·hidden, batch) scratch; `state.h`/`state.c` are
  /// (hidden, batch) and updated in place.
  ///
  /// Column g of the result is bit-identical to a StepInto call on graph
  /// g's own (hidden, 1) state: per output element the k-accumulation runs
  /// in the same ascending order with the same zero-weight skip, and the
  /// gate math stores the same intermediates.  (When the opt-in SIMD path
  /// is enabled — nn/simd.h — activations switch to FastTanh/FastSigmoid
  /// and bit-parity becomes tolerance-parity; both paths stay internally
  /// consistent between StepInto and StepBatchInto.)
  void StepBatchInto(const Tensor& zx, const int* zx_cols, int batch,
                     Tensor& gates, BatchState& state) const;

  /// One recorded step; `x` must already be a tape node of shape
  /// (input_dim, 1).  Parameters are bound into the tape on first use.
  [[nodiscard]] TapeState Step(Tape& tape, Ref x, const TapeState& prev);

  /// Binds this cell's parameters into a fresh tape (one Param leaf per
  /// tensor per tape); called automatically by Step.
  void BindToTape(Tape& tape);

 private:
  ParamStore& store_;
  std::string prefix_;
  // Full parameter names, precomputed so the hot path never concatenates
  // strings (lookups stay allocation-free and Load()-safe — the store's
  // tensors are re-looked-up per call, never cached by address).
  std::string wx_name_, wh_name_, b_name_;
  int input_dim_ = 0;
  int hidden_dim_ = 0;

  // Per-tape parameter leaf cache (valid for the tape last bound).
  std::uint64_t bound_tape_id_ = 0;
  Ref wx_ = -1, wh_ = -1, b_ = -1;
};

}  // namespace respect::nn
