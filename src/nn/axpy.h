// Bundled row-axpy helpers for the GEMM-shaped kernels (MatMulKernel,
// QueryBatchInto, LstmCell::StepBatchInto).
//
// Those kernels accumulate `out[j] += coef_k · row_k[j]` one k at a time,
// which costs a load and a store of the accumulator row per multiply-add
// and leaves the kernels bound on memory ports rather than arithmetic.
// Bundling four k-rows into one sweep quarters that traffic.  Crucially it
// does NOT change the result: for every output element the four additions
// are applied left-associated in ascending-k order —
//   out[j] = (((out[j] + c0·r0[j]) + c1·r1[j]) + c2·r2[j]) + c3·r3[j]
// — which is the exact addition sequence the one-k-at-a-time sweeps
// perform, so callers keep their bit-identity contracts (the zero-weight
// skip happens before bundling, in the caller's k scan).
#pragma once

namespace respect::nn {

/// One bundled sweep: out[j] accumulates c0·r0[j] … c3·r3[j] in that order.
/// `out` must not alias any of the rows (accumulators and operands live in
/// distinct tensors in every caller).
inline void FusedAxpy4(const float* r0, const float* r1, const float* r2,
                       const float* r3, float c0, float c1, float c2,
                       float c3, float* __restrict out, int n) {
  for (int j = 0; j < n; ++j) {
    out[j] = (((out[j] + c0 * r0[j]) + c1 * r1[j]) + c2 * r2[j]) + c3 * r3[j];
  }
}

/// Single-row tail sweep for the up-to-three rows left over after bundling.
inline void Axpy(const float* r, float c, float* __restrict out, int n) {
  for (int j = 0; j < n; ++j) out[j] += c * r[j];
}

/// FusedAxpy4 over TWO accumulator rows that share the same operand rows.
/// The bit-identity argument forces each output element's additions into
/// one left-associated chain, which leaves the single-row sweep latency
/// bound on that chain; a second independent accumulator row doubles the
/// instruction-level parallelism without touching either row's addition
/// order, and the shared r0..r3 loads come for free.
inline void FusedAxpy4x2(const float* r0, const float* r1, const float* r2,
                         const float* r3, float a0, float a1, float a2,
                         float a3, float b0, float b1, float b2, float b3,
                         float* __restrict outa, float* __restrict outb,
                         int n) {
  for (int j = 0; j < n; ++j) {
    outa[j] =
        (((outa[j] + a0 * r0[j]) + a1 * r1[j]) + a2 * r2[j]) + a3 * r3[j];
    outb[j] =
        (((outb[j] + b0 * r0[j]) + b1 * r1[j]) + b2 * r2[j]) + b3 * r3[j];
  }
}

}  // namespace respect::nn
