// Adam optimizer over a ParamStore (Kingma & Ba), with optional global-norm
// gradient clipping — the paper trains with Adam at lr 1e-4.
#pragma once

#include <map>
#include <string>

#include "nn/params.h"

namespace respect::nn {

struct AdamConfig {
  float learning_rate = 1e-4f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float epsilon = 1e-8f;

  /// Clip gradients to this global L2 norm before stepping (0 = off).
  float max_grad_norm = 2.0f;
};

class Adam {
 public:
  explicit Adam(AdamConfig config = {}) : config_(config) {}

  /// Applies one update from the accumulated gradients in `store`, then
  /// zeroes them.  Returns the pre-clip global gradient norm.
  float Step(ParamStore& store);

  [[nodiscard]] std::int64_t StepCount() const { return t_; }

 private:
  AdamConfig config_;
  std::int64_t t_ = 0;
  std::map<std::string, Tensor> m_;
  std::map<std::string, Tensor> v_;
};

}  // namespace respect::nn
