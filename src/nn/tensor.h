// Dense 2-D float tensor — the numeric value type of the NN substrate.
//
// Everything the LSTM-PtrNet needs is expressible with small dense matrices
// (hidden size d <= a few hundred, sequence length |V| <= ~800), so the
// library deliberately stays 2-D, row-major, CPU-only, with no views.  The
// autodiff tape (tape.h) works on these values; the inference path uses the
// free functions here directly.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace respect::nn {

class Tensor {
 public:
  Tensor() = default;
  Tensor(int rows, int cols) : rows_(rows), cols_(cols), data_(Size()) {}
  Tensor(int rows, int cols, float fill)
      : rows_(rows), cols_(cols), data_(Size(), fill) {}

  [[nodiscard]] static Tensor Zeros(int rows, int cols) {
    return Tensor(rows, cols);
  }

  /// Xavier/Glorot uniform initialization: U(-a, a), a = sqrt(6/(in+out)).
  [[nodiscard]] static Tensor Xavier(int rows, int cols, std::mt19937_64& rng);

  [[nodiscard]] int Rows() const { return rows_; }
  [[nodiscard]] int Cols() const { return cols_; }
  [[nodiscard]] std::int64_t Size() const {
    return std::int64_t{rows_} * cols_;
  }

  [[nodiscard]] float& At(int r, int c) { return data_[Index(r, c)]; }
  [[nodiscard]] float At(int r, int c) const { return data_[Index(r, c)]; }

  [[nodiscard]] float* Data() { return data_.data(); }
  [[nodiscard]] const float* Data() const { return data_.data(); }

  [[nodiscard]] bool SameShape(const Tensor& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  void Fill(float value) { std::fill(data_.begin(), data_.end(), value); }

  /// Reshapes to (rows, cols), reusing the existing storage.  Capacity never
  /// shrinks, so a tensor cycled through the sizes of a workspace reaches a
  /// steady state where Resize performs no heap allocation.  Contents are
  /// unspecified after a Resize — callers overwrite (or Fill) before reading.
  void Resize(int rows, int cols) {
    rows_ = rows;
    cols_ = cols;
    data_.resize(Size());
  }

  /// this += other (shapes must match).
  void Accumulate(const Tensor& other);

 private:
  [[nodiscard]] std::int64_t Index(int r, int c) const {
    return std::int64_t{r} * cols_ + c;
  }

  int rows_ = 0;
  int cols_ = 0;
  std::vector<float> data_;
};

// ---- Value-level operations (shared by the inference path and the tape's
// forward pass).  All functions check shapes and throw std::invalid_argument
// on mismatch. ----

[[nodiscard]] Tensor MatMul(const Tensor& a, const Tensor& b);
[[nodiscard]] Tensor Add(const Tensor& a, const Tensor& b);
[[nodiscard]] Tensor Sub(const Tensor& a, const Tensor& b);
[[nodiscard]] Tensor Mul(const Tensor& a, const Tensor& b);  // elementwise
[[nodiscard]] Tensor Scale(const Tensor& a, float s);
[[nodiscard]] Tensor Tanh(const Tensor& a);
[[nodiscard]] Tensor Sigmoid(const Tensor& a);

/// a: (r, c), col: (r, 1) broadcast-added to every column.
[[nodiscard]] Tensor AddBroadcastCol(const Tensor& a, const Tensor& col);

/// Stacks column vectors (all (r,1)) into an (r, n) matrix.
[[nodiscard]] Tensor ConcatCols(const std::vector<Tensor>& cols);

/// Rows [r0, r1) of a.
[[nodiscard]] Tensor SliceRows(const Tensor& a, int r0, int r1);

[[nodiscard]] Tensor Transpose(const Tensor& a);

/// Columns [c0, c1) of a.
[[nodiscard]] Tensor SliceCols(const Tensor& a, int c0, int c1);

/// Masked softmax over a (1, n) row: entries with mask[i]==false get
/// probability 0.  Throws when every entry is masked.
[[nodiscard]] Tensor MaskedSoftmax(const Tensor& logits,
                                   const std::vector<bool>& valid);

// ---- Destination-passing variants (the inference hot path). ----
//
// Each writes into a caller-owned `out` tensor that must already have the
// result shape, and performs no heap allocation.  Results are bit-identical
// to the allocating counterparts above: the kernels preserve the same
// floating-point summation order.  `out` must not alias an input.

/// out = a · b.  out must be (a.Rows(), b.Cols()).
void MatMulInto(const Tensor& a, const Tensor& b, Tensor& out);

/// out = a + b (elementwise).
void AddInto(const Tensor& a, const Tensor& b, Tensor& out);

/// out = tanh(a) (elementwise).  out == &a is allowed.
void TanhInto(const Tensor& a, Tensor& out);

/// out = sigmoid(a) (elementwise).  out == &a is allowed.
void SigmoidInto(const Tensor& a, Tensor& out);

/// a[:, j] += col[j-th row broadcast]: adds `col` ((rows, 1)) to every
/// column of `a` in place.
void AddBroadcastColInPlace(Tensor& a, const Tensor& col);

/// MaskedSoftmax into `out` ((1, n)); `valid` uses 0/non-0 bytes so the
/// mask itself can live in a reusable workspace buffer (std::vector<bool>
/// cannot hand out stable storage).  Throws when every entry is masked.
void MaskedSoftmaxInto(const Tensor& logits,
                       const std::vector<std::uint8_t>& valid, Tensor& out);

/// Masked softmax over the column slice [c0, c0+n) of a packed (1, total)
/// logits row, writing the same slice of `out` (also (1, total)); entries
/// outside the slice are untouched.  `valid` is indexed by absolute column
/// (same packing as `logits`).  Bit-identical to MaskedSoftmaxInto run on
/// the extracted slice — this is the per-graph softmax of the batched
/// decode path, which packs B graphs' logits side by side.  Throws when
/// every entry in the slice is masked.
void MaskedSoftmaxSliceInto(const Tensor& logits,
                            const std::vector<std::uint8_t>& valid, int c0,
                            int n, Tensor& out);

}  // namespace respect::nn
