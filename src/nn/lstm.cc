#include "nn/lstm.h"

#include <cmath>
#include <stdexcept>

#include "nn/axpy.h"
#include "nn/simd.h"

namespace respect::nn {

LstmCell::LstmCell(ParamStore& store, std::string prefix, int input_dim,
                   int hidden_dim, std::mt19937_64& rng)
    : store_(store),
      prefix_(std::move(prefix)),
      wx_name_(prefix_ + ".Wx"),
      wh_name_(prefix_ + ".Wh"),
      b_name_(prefix_ + ".b"),
      input_dim_(input_dim),
      hidden_dim_(hidden_dim) {
  store_.GetOrCreate(wx_name_, 4 * hidden_dim_, input_dim_, rng);
  store_.GetOrCreate(wh_name_, 4 * hidden_dim_, hidden_dim_, rng);
  store_.GetOrCreate(b_name_, 4 * hidden_dim_, 1, rng);
  // Bias convention: forget gate starts open (+1) so early training does not
  // wash out the recurrent state.
  Tensor& b = store_.Value(b_name_);
  for (int i = hidden_dim_; i < 2 * hidden_dim_; ++i) b.At(i, 0) = 1.0f;
}

const Tensor& LstmCell::InputWeight() const { return store_.Value(wx_name_); }

LstmCell::State LstmCell::InitialState() const {
  return State{Tensor::Zeros(hidden_dim_, 1), Tensor::Zeros(hidden_dim_, 1)};
}

LstmCell::TapeState LstmCell::InitialState(Tape& tape) const {
  return TapeState{tape.Constant(Tensor::Zeros(hidden_dim_, 1)),
                   tape.Constant(Tensor::Zeros(hidden_dim_, 1))};
}

LstmCell::State LstmCell::Step(const Tensor& x, const State& prev) const {
  if (x.Rows() != input_dim_ || x.Cols() != 1) {
    throw std::invalid_argument("LstmCell::Step: bad input shape");
  }
  const Tensor z = Add(Add(MatMul(store_.Value(wx_name_), x),
                           MatMul(store_.Value(wh_name_), prev.h)),
                       store_.Value(b_name_));
  const int d = hidden_dim_;
  const Tensor i = Sigmoid(SliceRows(z, 0, d));
  const Tensor f = Sigmoid(SliceRows(z, d, 2 * d));
  const Tensor g = Tanh(SliceRows(z, 2 * d, 3 * d));
  const Tensor o = Sigmoid(SliceRows(z, 3 * d, 4 * d));
  State next;
  next.c = Add(Mul(f, prev.c), Mul(i, g));
  next.h = Mul(o, Tanh(next.c));
  return next;
}

void LstmCell::StepInto(const Tensor& zx, int zx_col, Tensor& gates,
                        State& state) const {
  const int d = hidden_dim_;
  if (zx.Rows() != 4 * d || zx_col < 0 || zx_col >= zx.Cols()) {
    throw std::invalid_argument("LstmCell::StepInto: bad zx column");
  }
  if (gates.Rows() != 4 * d || gates.Cols() != 1 || state.h.Rows() != d ||
      state.h.Cols() != 1 || state.c.Rows() != d || state.c.Cols() != 1) {
    throw std::invalid_argument("LstmCell::StepInto: bad buffer shape");
  }
  const Tensor& wh = store_.Value(wh_name_);
  const Tensor& b = store_.Value(b_name_);
  const float* __restrict zxd = zx.Data();
  const float* __restrict whd = wh.Data();
  const float* __restrict bd = b.Data();
  // No __restrict on h: the state-update loop below writes the same
  // storage through hc, and two restrict-qualified views of one object in
  // one scope would be undefined behavior.
  const float* h = state.h.Data();
  float* __restrict zd = gates.Data();
  const int zx_cols = zx.Cols();

  // z = (Wx·x + Wh·h) + b, with the Wh·h GEMV accumulated like MatMul (k
  // ascending, zero-weight skip) so the sum matches Step() bit-for-bit.
  for (int i = 0; i < 4 * d; ++i) {
    const float* __restrict wrow = whd + std::int64_t{i} * d;
    float acc = 0.0f;
    for (int k = 0; k < d; ++k) {
      const float w = wrow[k];
      if (w == 0.0f) continue;
      acc += w * h[k];
    }
    zd[i] = (zxd[std::int64_t{i} * zx_cols + zx_col] + acc) + bd[i];
  }

  // Gate order [i f g o]; products are stored before the sum so the
  // arithmetic matches the unfused Mul/Add chain exactly.
  float* hc = state.h.Data();
  float* __restrict cc = state.c.Data();
  if (simd::Enabled()) {
    for (int r = 0; r < d; ++r) {
      const float gi = simd::FastSigmoid(zd[r]);
      const float gf = simd::FastSigmoid(zd[d + r]);
      const float gg = simd::FastTanh(zd[2 * d + r]);
      const float go = simd::FastSigmoid(zd[3 * d + r]);
      const float c_next = gf * cc[r] + gi * gg;
      cc[r] = c_next;
      hc[r] = go * simd::FastTanh(c_next);
    }
    return;
  }
  for (int r = 0; r < d; ++r) {
    const float gi = 1.0f / (1.0f + std::exp(-zd[r]));
    const float gf = 1.0f / (1.0f + std::exp(-zd[d + r]));
    const float gg = std::tanh(zd[2 * d + r]);
    const float go = 1.0f / (1.0f + std::exp(-zd[3 * d + r]));
    const float fc = gf * cc[r];
    const float ig = gi * gg;
    const float c_next = fc + ig;
    cc[r] = c_next;
    hc[r] = go * std::tanh(c_next);
  }
}

void LstmCell::StepBatchInto(const Tensor& zx, const int* zx_cols, int batch,
                             Tensor& gates, BatchState& state) const {
  const int d = hidden_dim_;
  if (batch <= 0 || zx.Rows() != 4 * d) {
    throw std::invalid_argument("LstmCell::StepBatchInto: bad zx shape");
  }
  for (int g = 0; g < batch; ++g) {
    if (zx_cols[g] < 0 || zx_cols[g] >= zx.Cols()) {
      throw std::invalid_argument("LstmCell::StepBatchInto: bad zx column");
    }
  }
  if (gates.Rows() != 4 * d || gates.Cols() != batch ||
      state.h.Rows() != d || state.h.Cols() != batch ||
      state.c.Rows() != d || state.c.Cols() != batch) {
    throw std::invalid_argument("LstmCell::StepBatchInto: bad buffer shape");
  }
  const Tensor& wh = store_.Value(wh_name_);
  const Tensor& b = store_.Value(b_name_);
  const float* __restrict zxd = zx.Data();
  const float* __restrict whd = wh.Data();
  const float* __restrict bd = b.Data();
  // No __restrict on h: the state-update loop below writes the same
  // storage (see StepInto).
  const float* h = state.h.Data();
  float* __restrict zd = gates.Data();
  const int zxn = zx.Cols();

  // z[:, g] = (Wx·x_g + Wh·h_g) + b as a (4d, d)×(d, B) GEMM.  For each
  // output element the k-accumulation is ascending with the w==0 skip —
  // exactly StepInto's GEMV per column — while the inner g loop runs over
  // contiguous storage (h is (d, B) row-major), which is where the batch
  // speedup comes from: one weight load feeds B multiply-adds.  Output
  // rows go two at a time over fixed groups of four k values (nn/axpy.h):
  // any partition of the ascending nonzero-k sequence into ordered sweeps
  // leaves each element's left-associated addition chain — and therefore
  // the result bits — unchanged, while the row pair gives the hardware two
  // independent accumulation chains instead of one latency-bound chain.
  for (int i = 0; i < 4 * d; i += 2) {
    const float* __restrict wra = whd + std::int64_t{i} * d;
    const float* __restrict wrb = wra + d;
    float* __restrict acca = zd + std::int64_t{i} * batch;
    float* __restrict accb = acca + batch;
    for (int g = 0; g < batch; ++g) acca[g] = 0.0f;
    for (int g = 0; g < batch; ++g) accb[g] = 0.0f;
    int k = 0;
    for (; k + 4 <= d; k += 4) {
      const float a0 = wra[k], a1 = wra[k + 1], a2 = wra[k + 2],
                  a3 = wra[k + 3];
      const float b0 = wrb[k], b1 = wrb[k + 1], b2 = wrb[k + 2],
                  b3 = wrb[k + 3];
      const float* hk = h + std::int64_t{k} * batch;
      if ((a0 != 0.0f) & (a1 != 0.0f) & (a2 != 0.0f) & (a3 != 0.0f) &
          (b0 != 0.0f) & (b1 != 0.0f) & (b2 != 0.0f) & (b3 != 0.0f)) {
        FusedAxpy4x2(hk, hk + batch, hk + 2 * batch, hk + 3 * batch, a0, a1,
                     a2, a3, b0, b1, b2, b3, acca, accb, batch);
      } else {
        // Rare zero weight in the group: one-row sweeps with the skip, the
        // same per-element addition chain in the same order.
        for (int t = 0; t < 4; ++t) {
          if (wra[k + t] != 0.0f) {
            Axpy(hk + std::int64_t{t} * batch, wra[k + t], acca, batch);
          }
        }
        for (int t = 0; t < 4; ++t) {
          if (wrb[k + t] != 0.0f) {
            Axpy(hk + std::int64_t{t} * batch, wrb[k + t], accb, batch);
          }
        }
      }
    }
    for (; k < d; ++k) {
      const float* hk = h + std::int64_t{k} * batch;
      if (wra[k] != 0.0f) Axpy(hk, wra[k], acca, batch);
      if (wrb[k] != 0.0f) Axpy(hk, wrb[k], accb, batch);
    }
    const float bia = bd[i];
    const float bib = bd[i + 1];
    const float* __restrict zxra = zxd + std::int64_t{i} * zxn;
    const float* __restrict zxrb = zxra + zxn;
    for (int g = 0; g < batch; ++g) {
      acca[g] = (zxra[zx_cols[g]] + acca[g]) + bia;
      accb[g] = (zxrb[zx_cols[g]] + accb[g]) + bib;
    }
  }

  // Same gate math as StepInto, per (r, g); the g loop is contiguous in
  // every buffer.
  float* hc = state.h.Data();
  float* __restrict cc = state.c.Data();
  if (simd::Enabled()) {
    for (int r = 0; r < d; ++r) {
      const float* __restrict zi = zd + std::int64_t{r} * batch;
      const float* __restrict zf = zd + std::int64_t{d + r} * batch;
      const float* __restrict zg = zd + std::int64_t{2 * d + r} * batch;
      const float* __restrict zo = zd + std::int64_t{3 * d + r} * batch;
      float* hrow = hc + std::int64_t{r} * batch;
      float* __restrict crow = cc + std::int64_t{r} * batch;
      for (int g = 0; g < batch; ++g) {
        const float gi = simd::FastSigmoid(zi[g]);
        const float gf = simd::FastSigmoid(zf[g]);
        const float gg = simd::FastTanh(zg[g]);
        const float go = simd::FastSigmoid(zo[g]);
        const float c_next = gf * crow[g] + gi * gg;
        crow[g] = c_next;
        hrow[g] = go * simd::FastTanh(c_next);
      }
    }
    return;
  }
  for (int r = 0; r < d; ++r) {
    const float* __restrict zi = zd + std::int64_t{r} * batch;
    const float* __restrict zf = zd + std::int64_t{d + r} * batch;
    const float* __restrict zg = zd + std::int64_t{2 * d + r} * batch;
    const float* __restrict zo = zd + std::int64_t{3 * d + r} * batch;
    float* hrow = hc + std::int64_t{r} * batch;
    float* __restrict crow = cc + std::int64_t{r} * batch;
    for (int g = 0; g < batch; ++g) {
      const float gi = 1.0f / (1.0f + std::exp(-zi[g]));
      const float gf = 1.0f / (1.0f + std::exp(-zf[g]));
      const float gg = std::tanh(zg[g]);
      const float go = 1.0f / (1.0f + std::exp(-zo[g]));
      const float fc = gf * crow[g];
      const float ig = gi * gg;
      const float c_next = fc + ig;
      crow[g] = c_next;
      hrow[g] = go * std::tanh(c_next);
    }
  }
}

void LstmCell::BindToTape(Tape& tape) {
  if (bound_tape_id_ == tape.Id()) return;
  bound_tape_id_ = tape.Id();
  wx_ = tape.Param(store_.Value(wx_name_), &store_.Grad(wx_name_));
  wh_ = tape.Param(store_.Value(wh_name_), &store_.Grad(wh_name_));
  b_ = tape.Param(store_.Value(b_name_), &store_.Grad(b_name_));
}

LstmCell::TapeState LstmCell::Step(Tape& tape, Ref x, const TapeState& prev) {
  BindToTape(tape);
  const Ref z = tape.AddBroadcastCol(
      tape.Add(tape.MatMul(wx_, x), tape.MatMul(wh_, prev.h)), b_);
  const int d = hidden_dim_;
  const Ref i = tape.Sigmoid(tape.SliceRows(z, 0, d));
  const Ref f = tape.Sigmoid(tape.SliceRows(z, d, 2 * d));
  const Ref g = tape.Tanh(tape.SliceRows(z, 2 * d, 3 * d));
  const Ref o = tape.Sigmoid(tape.SliceRows(z, 3 * d, 4 * d));
  TapeState next;
  next.c = tape.Add(tape.Mul(f, prev.c), tape.Mul(i, g));
  next.h = tape.Mul(o, tape.Tanh(next.c));
  return next;
}

}  // namespace respect::nn
