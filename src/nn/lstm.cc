#include "nn/lstm.h"

#include <stdexcept>

namespace respect::nn {

LstmCell::LstmCell(ParamStore& store, std::string prefix, int input_dim,
                   int hidden_dim, std::mt19937_64& rng)
    : store_(store),
      prefix_(std::move(prefix)),
      input_dim_(input_dim),
      hidden_dim_(hidden_dim) {
  store_.GetOrCreate(prefix_ + ".Wx", 4 * hidden_dim_, input_dim_, rng);
  store_.GetOrCreate(prefix_ + ".Wh", 4 * hidden_dim_, hidden_dim_, rng);
  store_.GetOrCreate(prefix_ + ".b", 4 * hidden_dim_, 1, rng);
  // Bias convention: forget gate starts open (+1) so early training does not
  // wash out the recurrent state.
  Tensor& b = store_.Value(prefix_ + ".b");
  for (int i = hidden_dim_; i < 2 * hidden_dim_; ++i) b.At(i, 0) = 1.0f;
}

LstmCell::State LstmCell::InitialState() const {
  return State{Tensor::Zeros(hidden_dim_, 1), Tensor::Zeros(hidden_dim_, 1)};
}

LstmCell::TapeState LstmCell::InitialState(Tape& tape) const {
  return TapeState{tape.Constant(Tensor::Zeros(hidden_dim_, 1)),
                   tape.Constant(Tensor::Zeros(hidden_dim_, 1))};
}

LstmCell::State LstmCell::Step(const Tensor& x, const State& prev) const {
  if (x.Rows() != input_dim_ || x.Cols() != 1) {
    throw std::invalid_argument("LstmCell::Step: bad input shape");
  }
  const Tensor z = Add(Add(MatMul(store_.Value(prefix_ + ".Wx"), x),
                           MatMul(store_.Value(prefix_ + ".Wh"), prev.h)),
                       store_.Value(prefix_ + ".b"));
  const int d = hidden_dim_;
  const Tensor i = Sigmoid(SliceRows(z, 0, d));
  const Tensor f = Sigmoid(SliceRows(z, d, 2 * d));
  const Tensor g = Tanh(SliceRows(z, 2 * d, 3 * d));
  const Tensor o = Sigmoid(SliceRows(z, 3 * d, 4 * d));
  State next;
  next.c = Add(Mul(f, prev.c), Mul(i, g));
  next.h = Mul(o, Tanh(next.c));
  return next;
}

void LstmCell::BindToTape(Tape& tape) {
  if (bound_tape_id_ == tape.Id()) return;
  bound_tape_id_ = tape.Id();
  wx_ = tape.Param(store_.Value(prefix_ + ".Wx"), &store_.Grad(prefix_ + ".Wx"));
  wh_ = tape.Param(store_.Value(prefix_ + ".Wh"), &store_.Grad(prefix_ + ".Wh"));
  b_ = tape.Param(store_.Value(prefix_ + ".b"), &store_.Grad(prefix_ + ".b"));
}

LstmCell::TapeState LstmCell::Step(Tape& tape, Ref x, const TapeState& prev) {
  BindToTape(tape);
  const Ref z = tape.AddBroadcastCol(
      tape.Add(tape.MatMul(wx_, x), tape.MatMul(wh_, prev.h)), b_);
  const int d = hidden_dim_;
  const Ref i = tape.Sigmoid(tape.SliceRows(z, 0, d));
  const Ref f = tape.Sigmoid(tape.SliceRows(z, d, 2 * d));
  const Ref g = tape.Tanh(tape.SliceRows(z, 2 * d, 3 * d));
  const Ref o = tape.Sigmoid(tape.SliceRows(z, 3 * d, 4 * d));
  TapeState next;
  next.c = tape.Add(tape.Mul(f, prev.c), tape.Mul(i, g));
  next.h = tape.Mul(o, tape.Tanh(next.c));
  return next;
}

}  // namespace respect::nn
