#include "nn/lstm.h"

#include <cmath>
#include <stdexcept>

namespace respect::nn {

LstmCell::LstmCell(ParamStore& store, std::string prefix, int input_dim,
                   int hidden_dim, std::mt19937_64& rng)
    : store_(store),
      prefix_(std::move(prefix)),
      wx_name_(prefix_ + ".Wx"),
      wh_name_(prefix_ + ".Wh"),
      b_name_(prefix_ + ".b"),
      input_dim_(input_dim),
      hidden_dim_(hidden_dim) {
  store_.GetOrCreate(wx_name_, 4 * hidden_dim_, input_dim_, rng);
  store_.GetOrCreate(wh_name_, 4 * hidden_dim_, hidden_dim_, rng);
  store_.GetOrCreate(b_name_, 4 * hidden_dim_, 1, rng);
  // Bias convention: forget gate starts open (+1) so early training does not
  // wash out the recurrent state.
  Tensor& b = store_.Value(b_name_);
  for (int i = hidden_dim_; i < 2 * hidden_dim_; ++i) b.At(i, 0) = 1.0f;
}

const Tensor& LstmCell::InputWeight() const { return store_.Value(wx_name_); }

LstmCell::State LstmCell::InitialState() const {
  return State{Tensor::Zeros(hidden_dim_, 1), Tensor::Zeros(hidden_dim_, 1)};
}

LstmCell::TapeState LstmCell::InitialState(Tape& tape) const {
  return TapeState{tape.Constant(Tensor::Zeros(hidden_dim_, 1)),
                   tape.Constant(Tensor::Zeros(hidden_dim_, 1))};
}

LstmCell::State LstmCell::Step(const Tensor& x, const State& prev) const {
  if (x.Rows() != input_dim_ || x.Cols() != 1) {
    throw std::invalid_argument("LstmCell::Step: bad input shape");
  }
  const Tensor z = Add(Add(MatMul(store_.Value(wx_name_), x),
                           MatMul(store_.Value(wh_name_), prev.h)),
                       store_.Value(b_name_));
  const int d = hidden_dim_;
  const Tensor i = Sigmoid(SliceRows(z, 0, d));
  const Tensor f = Sigmoid(SliceRows(z, d, 2 * d));
  const Tensor g = Tanh(SliceRows(z, 2 * d, 3 * d));
  const Tensor o = Sigmoid(SliceRows(z, 3 * d, 4 * d));
  State next;
  next.c = Add(Mul(f, prev.c), Mul(i, g));
  next.h = Mul(o, Tanh(next.c));
  return next;
}

void LstmCell::StepInto(const Tensor& zx, int zx_col, Tensor& gates,
                        State& state) const {
  const int d = hidden_dim_;
  if (zx.Rows() != 4 * d || zx_col < 0 || zx_col >= zx.Cols()) {
    throw std::invalid_argument("LstmCell::StepInto: bad zx column");
  }
  if (gates.Rows() != 4 * d || gates.Cols() != 1 || state.h.Rows() != d ||
      state.h.Cols() != 1 || state.c.Rows() != d || state.c.Cols() != 1) {
    throw std::invalid_argument("LstmCell::StepInto: bad buffer shape");
  }
  const Tensor& wh = store_.Value(wh_name_);
  const Tensor& b = store_.Value(b_name_);
  const float* __restrict zxd = zx.Data();
  const float* __restrict whd = wh.Data();
  const float* __restrict bd = b.Data();
  // No __restrict on h: the state-update loop below writes the same
  // storage through hc, and two restrict-qualified views of one object in
  // one scope would be undefined behavior.
  const float* h = state.h.Data();
  float* __restrict zd = gates.Data();
  const int zx_cols = zx.Cols();

  // z = (Wx·x + Wh·h) + b, with the Wh·h GEMV accumulated like MatMul (k
  // ascending, zero-weight skip) so the sum matches Step() bit-for-bit.
  for (int i = 0; i < 4 * d; ++i) {
    const float* __restrict wrow = whd + std::int64_t{i} * d;
    float acc = 0.0f;
    for (int k = 0; k < d; ++k) {
      const float w = wrow[k];
      if (w == 0.0f) continue;
      acc += w * h[k];
    }
    zd[i] = (zxd[std::int64_t{i} * zx_cols + zx_col] + acc) + bd[i];
  }

  // Gate order [i f g o]; products are stored before the sum so the
  // arithmetic matches the unfused Mul/Add chain exactly.
  float* hc = state.h.Data();
  float* __restrict cc = state.c.Data();
  for (int r = 0; r < d; ++r) {
    const float gi = 1.0f / (1.0f + std::exp(-zd[r]));
    const float gf = 1.0f / (1.0f + std::exp(-zd[d + r]));
    const float gg = std::tanh(zd[2 * d + r]);
    const float go = 1.0f / (1.0f + std::exp(-zd[3 * d + r]));
    const float fc = gf * cc[r];
    const float ig = gi * gg;
    const float c_next = fc + ig;
    cc[r] = c_next;
    hc[r] = go * std::tanh(c_next);
  }
}

void LstmCell::BindToTape(Tape& tape) {
  if (bound_tape_id_ == tape.Id()) return;
  bound_tape_id_ = tape.Id();
  wx_ = tape.Param(store_.Value(wx_name_), &store_.Grad(wx_name_));
  wh_ = tape.Param(store_.Value(wh_name_), &store_.Grad(wh_name_));
  b_ = tape.Param(store_.Value(b_name_), &store_.Grad(b_name_));
}

LstmCell::TapeState LstmCell::Step(Tape& tape, Ref x, const TapeState& prev) {
  BindToTape(tape);
  const Ref z = tape.AddBroadcastCol(
      tape.Add(tape.MatMul(wx_, x), tape.MatMul(wh_, prev.h)), b_);
  const int d = hidden_dim_;
  const Ref i = tape.Sigmoid(tape.SliceRows(z, 0, d));
  const Ref f = tape.Sigmoid(tape.SliceRows(z, d, 2 * d));
  const Ref g = tape.Tanh(tape.SliceRows(z, 2 * d, 3 * d));
  const Ref o = tape.Sigmoid(tape.SliceRows(z, 3 * d, 4 * d));
  TapeState next;
  next.c = tape.Add(tape.Mul(f, prev.c), tape.Mul(i, g));
  next.h = tape.Mul(o, tape.Tanh(next.c));
  return next;
}

}  // namespace respect::nn
