#include "nn/attention.h"

#include <cmath>

#include <stdexcept>

namespace respect::nn {

PointerAttention::PointerAttention(ParamStore& store, std::string prefix,
                                   int hidden_dim, std::mt19937_64& rng)
    : store_(store),
      prefix_(std::move(prefix)),
      wref_g_name_(prefix_ + ".Wref_g"),
      wq_g_name_(prefix_ + ".Wq_g"),
      bg_name_(prefix_ + ".b_g"),
      vg_name_(prefix_ + ".v_g"),
      wref_p_name_(prefix_ + ".Wref_p"),
      wq_p_name_(prefix_ + ".Wq_p"),
      bp_name_(prefix_ + ".b_p"),
      vp_name_(prefix_ + ".v_p"),
      hidden_dim_(hidden_dim) {
  store_.GetOrCreate(wref_g_name_, hidden_dim_, hidden_dim_, rng);
  store_.GetOrCreate(wq_g_name_, hidden_dim_, hidden_dim_, rng);
  store_.GetOrCreate(bg_name_, hidden_dim_, 1, rng);
  store_.GetOrCreate(vg_name_, hidden_dim_, 1, rng);
  store_.GetOrCreate(wref_p_name_, hidden_dim_, hidden_dim_, rng);
  store_.GetOrCreate(wq_p_name_, hidden_dim_, hidden_dim_, rng);
  store_.GetOrCreate(bp_name_, hidden_dim_, 1, rng);
  store_.GetOrCreate(vp_name_, hidden_dim_, 1, rng);
}

PointerAttention::CachedRefs PointerAttention::Precompute(
    const Tensor& contexts) const {
  if (contexts.Rows() != hidden_dim_) {
    throw std::invalid_argument("PointerAttention: contexts must be (d, V)");
  }
  return CachedRefs{MatMul(store_.Value(wref_g_name_), contexts),
                    MatMul(store_.Value(wref_p_name_), contexts)};
}

void PointerAttention::PrecomputeInto(const Tensor& contexts,
                                      CachedRefs& refs) const {
  if (contexts.Rows() != hidden_dim_) {
    throw std::invalid_argument("PointerAttention: contexts must be (d, V)");
  }
  refs.glimpse_ref.Resize(hidden_dim_, contexts.Cols());
  refs.pointer_ref.Resize(hidden_dim_, contexts.Cols());
  MatMulInto(store_.Value(wref_g_name_), contexts, refs.glimpse_ref);
  MatMulInto(store_.Value(wref_p_name_), contexts, refs.pointer_ref);
}

namespace {

/// Fused attention-score kernel: scores[j] = v^T tanh(ref[:,j] + q), with no
/// (d, V) temporaries.  This runs once per decode step over every node, so
/// it dominates inference cost on large graphs.
void ScoreColumns(const Tensor& ref, const Tensor& q, const Tensor& v,
                  Tensor& scores) {
  const int d = ref.Rows();
  const int n = ref.Cols();
  for (int j = 0; j < n; ++j) scores.At(0, j) = 0.0f;
  for (int i = 0; i < d; ++i) {
    const float qi = q.At(i, 0);
    const float vi = v.At(i, 0);
    const float* row = ref.Data() + static_cast<std::int64_t>(i) * n;
    float* out = scores.Data();
    for (int j = 0; j < n; ++j) {
      out[j] += vi * std::tanh(row[j] + qi);
    }
  }
}

/// q = W·h + b without temporaries; the GEMV accumulates like MatMul (k
/// ascending, zero-weight skip), then adds b — matching Add(MatMul(W, h), b)
/// bit-for-bit.
void QueryInto(const Tensor& w, const Tensor& h, const Tensor& b, Tensor& q) {
  const int d = w.Rows();
  const int k_dim = w.Cols();
  const float* __restrict wd = w.Data();
  const float* __restrict hd = h.Data();
  const float* __restrict bd = b.Data();
  float* __restrict qd = q.Data();
  for (int i = 0; i < d; ++i) {
    const float* __restrict wrow = wd + static_cast<std::int64_t>(i) * k_dim;
    float acc = 0.0f;
    for (int k = 0; k < k_dim; ++k) {
      const float wik = wrow[k];
      if (wik == 0.0f) continue;
      acc += wik * hd[k];
    }
    qd[i] = acc + bd[i];
  }
}

/// glimpse = contexts · attnᵀ, row-dot form shared by both inference paths.
void GlimpseInto(const Tensor& contexts, const Tensor& attn, Tensor& glimpse) {
  const int d = contexts.Rows();
  const int n = contexts.Cols();
  for (int i = 0; i < d; ++i) {
    const float* row = contexts.Data() + static_cast<std::int64_t>(i) * n;
    float acc = 0.0f;
    for (int j = 0; j < n; ++j) acc += row[j] * attn.At(0, j);
    glimpse.At(i, 0) = acc;
  }
}

/// ScoreColumns restricted to the valid columns: scores[idx] for idx in
/// `valid_idx` only, masked entries untouched.  Per computed element the
/// accumulation is i-ascending exactly like ScoreColumns, so every value
/// the masked softmax reads is bit-identical.
void ScoreColumnsMasked(const Tensor& ref, const Tensor& q, const Tensor& v,
                        const std::vector<int>& valid_idx, Tensor& scores) {
  const int d = ref.Rows();
  const int n = ref.Cols();
  const float* __restrict rd = ref.Data();
  const float* __restrict qd = q.Data();
  const float* __restrict vd = v.Data();
  float* __restrict out = scores.Data();
  for (const int j : valid_idx) {
    float acc = 0.0f;
    const float* col = rd + j;
    for (int i = 0; i < d; ++i) {
      acc += vd[i] * std::tanh(col[static_cast<std::int64_t>(i) * n] + qd[i]);
    }
    out[j] = acc;
  }
}

/// GlimpseInto restricted to the valid columns.  Masked columns carry an
/// attention weight of exactly ±0, whose addition cannot change the
/// accumulated sum, so skipping them leaves the glimpse unchanged.
void GlimpseIntoMasked(const Tensor& contexts, const Tensor& attn,
                       const std::vector<int>& valid_idx, Tensor& glimpse) {
  const int d = contexts.Rows();
  const int n = contexts.Cols();
  const float* __restrict ad = attn.Data();
  for (int i = 0; i < d; ++i) {
    const float* row = contexts.Data() + static_cast<std::int64_t>(i) * n;
    float acc = 0.0f;
    for (const int j : valid_idx) acc += row[j] * ad[j];
    glimpse.At(i, 0) = acc;
  }
}

}  // namespace

Tensor PointerAttention::PointerLogits(const Tensor& contexts,
                                       const CachedRefs& refs, const Tensor& h,
                                       const std::vector<bool>& valid) const {
  const int n = contexts.Cols();
  const int d = hidden_dim_;

  // Glimpse.
  const Tensor q_g = Add(MatMul(store_.Value(wq_g_name_), h),
                         store_.Value(bg_name_));
  Tensor scores_g(1, n);
  ScoreColumns(refs.glimpse_ref, q_g, store_.Value(vg_name_), scores_g);
  const Tensor attn = MaskedSoftmax(scores_g, valid);
  Tensor glimpse(d, 1);
  GlimpseInto(contexts, attn, glimpse);

  // Pointer.
  const Tensor q_p = Add(MatMul(store_.Value(wq_p_name_), glimpse),
                         store_.Value(bp_name_));
  Tensor u(1, n);
  ScoreColumns(refs.pointer_ref, q_p, store_.Value(vp_name_), u);
  for (int j = 0; j < n; ++j) {
    u.At(0, j) = kLogitClip * std::tanh(u.At(0, j));
  }
  return u;
}

void PointerAttention::Scratch::Reserve(int hidden_dim, int nodes) {
  q.Resize(hidden_dim, 1);
  scores.Resize(1, nodes);
  attn.Resize(1, nodes);
  glimpse.Resize(hidden_dim, 1);
  valid_idx.reserve(nodes);
}

void PointerAttention::PointerLogitsInto(
    const Tensor& contexts, const CachedRefs& refs, const Tensor& h,
    const std::vector<std::uint8_t>& valid, Scratch& scratch,
    Tensor& logits) const {
  const int n = contexts.Cols();
  const int d = hidden_dim_;
  if (logits.Rows() != 1 || logits.Cols() != n || scratch.q.Rows() != d ||
      scratch.scores.Cols() != n || scratch.attn.Cols() != n ||
      scratch.glimpse.Rows() != d ||
      static_cast<int>(valid.size()) != n) {
    throw std::invalid_argument(
        "PointerAttention::PointerLogitsInto: bad buffer shape");
  }
  scratch.valid_idx.clear();
  for (int j = 0; j < n; ++j) {
    if (valid[j]) scratch.valid_idx.push_back(j);
  }

  // Glimpse.
  QueryInto(store_.Value(wq_g_name_), h, store_.Value(bg_name_), scratch.q);
  ScoreColumnsMasked(refs.glimpse_ref, scratch.q, store_.Value(vg_name_),
                     scratch.valid_idx, scratch.scores);
  MaskedSoftmaxInto(scratch.scores, valid, scratch.attn);
  GlimpseIntoMasked(contexts, scratch.attn, scratch.valid_idx,
                    scratch.glimpse);

  // Pointer.
  QueryInto(store_.Value(wq_p_name_), scratch.glimpse, store_.Value(bp_name_),
            scratch.q);
  ScoreColumnsMasked(refs.pointer_ref, scratch.q, store_.Value(vp_name_),
                     scratch.valid_idx, logits);
  float* u = logits.Data();
  for (const int j : scratch.valid_idx) {
    u[j] = kLogitClip * std::tanh(u[j]);
  }
}

void PointerAttention::BindToTape(Tape& tape) {
  if (bound_tape_id_ == tape.Id()) return;
  bound_tape_id_ = tape.Id();
  const auto bind = [&](const std::string& name) {
    return tape.Param(store_.Value(name), &store_.Grad(name));
  };
  wref_g_ = bind(wref_g_name_);
  wq_g_ = bind(wq_g_name_);
  bg_ = bind(bg_name_);
  vg_ = bind(vg_name_);
  wref_p_ = bind(wref_p_name_);
  wq_p_ = bind(wq_p_name_);
  bp_ = bind(bp_name_);
  vp_ = bind(vp_name_);
}

PointerAttention::TapeRefs PointerAttention::Precompute(Tape& tape,
                                                        Ref contexts) {
  BindToTape(tape);
  TapeRefs refs;
  refs.contexts = contexts;
  refs.glimpse_ref = tape.MatMul(wref_g_, contexts);
  refs.pointer_ref = tape.MatMul(wref_p_, contexts);
  return refs;
}

Ref PointerAttention::PointerLogits(Tape& tape, const TapeRefs& refs, Ref h,
                                    const std::vector<bool>& valid) {
  BindToTape(tape);
  // Glimpse.
  const Ref q_g =
      tape.AddBroadcastCol(tape.MatMul(wq_g_, h), bg_);  // (d,1)
  const Ref act_g = tape.Tanh(tape.AddBroadcastCol(refs.glimpse_ref, q_g));
  const Ref scores_g = tape.MatMul(tape.Transpose(vg_), act_g);
  const Ref attn = tape.MaskedSoftmax(scores_g, valid);
  const Ref glimpse = tape.MatMul(refs.contexts, tape.Transpose(attn));

  // Pointer.
  const Ref q_p = tape.AddBroadcastCol(tape.MatMul(wq_p_, glimpse), bp_);
  const Ref act_p = tape.Tanh(tape.AddBroadcastCol(refs.pointer_ref, q_p));
  const Ref u = tape.MatMul(tape.Transpose(vp_), act_p);
  return tape.Scale(tape.Tanh(u), kLogitClip);
}

}  // namespace respect::nn
