#include "nn/attention.h"

#include <cmath>

#include <stdexcept>

#include "nn/axpy.h"
#include "nn/simd.h"

namespace respect::nn {

PointerAttention::PointerAttention(ParamStore& store, std::string prefix,
                                   int hidden_dim, std::mt19937_64& rng)
    : store_(store),
      prefix_(std::move(prefix)),
      wref_g_name_(prefix_ + ".Wref_g"),
      wq_g_name_(prefix_ + ".Wq_g"),
      bg_name_(prefix_ + ".b_g"),
      vg_name_(prefix_ + ".v_g"),
      wref_p_name_(prefix_ + ".Wref_p"),
      wq_p_name_(prefix_ + ".Wq_p"),
      bp_name_(prefix_ + ".b_p"),
      vp_name_(prefix_ + ".v_p"),
      hidden_dim_(hidden_dim) {
  store_.GetOrCreate(wref_g_name_, hidden_dim_, hidden_dim_, rng);
  store_.GetOrCreate(wq_g_name_, hidden_dim_, hidden_dim_, rng);
  store_.GetOrCreate(bg_name_, hidden_dim_, 1, rng);
  store_.GetOrCreate(vg_name_, hidden_dim_, 1, rng);
  store_.GetOrCreate(wref_p_name_, hidden_dim_, hidden_dim_, rng);
  store_.GetOrCreate(wq_p_name_, hidden_dim_, hidden_dim_, rng);
  store_.GetOrCreate(bp_name_, hidden_dim_, 1, rng);
  store_.GetOrCreate(vp_name_, hidden_dim_, 1, rng);
}

PointerAttention::CachedRefs PointerAttention::Precompute(
    const Tensor& contexts) const {
  if (contexts.Rows() != hidden_dim_) {
    throw std::invalid_argument("PointerAttention: contexts must be (d, V)");
  }
  return CachedRefs{MatMul(store_.Value(wref_g_name_), contexts),
                    MatMul(store_.Value(wref_p_name_), contexts)};
}

void PointerAttention::PrecomputeInto(const Tensor& contexts,
                                      CachedRefs& refs) const {
  if (contexts.Rows() != hidden_dim_) {
    throw std::invalid_argument("PointerAttention: contexts must be (d, V)");
  }
  refs.glimpse_ref.Resize(hidden_dim_, contexts.Cols());
  refs.pointer_ref.Resize(hidden_dim_, contexts.Cols());
  MatMulInto(store_.Value(wref_g_name_), contexts, refs.glimpse_ref);
  MatMulInto(store_.Value(wref_p_name_), contexts, refs.pointer_ref);
}

namespace {

/// Fused attention-score kernel: scores[j] = v^T tanh(ref[:,j] + q), with no
/// (d, V) temporaries.  This runs once per decode step over every node, so
/// it dominates inference cost on large graphs.
void ScoreColumns(const Tensor& ref, const Tensor& q, const Tensor& v,
                  Tensor& scores) {
  const int d = ref.Rows();
  const int n = ref.Cols();
  for (int j = 0; j < n; ++j) scores.At(0, j) = 0.0f;
  for (int i = 0; i < d; ++i) {
    const float qi = q.At(i, 0);
    const float vi = v.At(i, 0);
    const float* row = ref.Data() + static_cast<std::int64_t>(i) * n;
    float* out = scores.Data();
    for (int j = 0; j < n; ++j) {
      out[j] += vi * std::tanh(row[j] + qi);
    }
  }
}

/// q = W·h + b without temporaries; the GEMV accumulates like MatMul (k
/// ascending, zero-weight skip), then adds b — matching Add(MatMul(W, h), b)
/// bit-for-bit.
void QueryInto(const Tensor& w, const Tensor& h, const Tensor& b, Tensor& q) {
  const int d = w.Rows();
  const int k_dim = w.Cols();
  const float* __restrict wd = w.Data();
  const float* __restrict hd = h.Data();
  const float* __restrict bd = b.Data();
  float* __restrict qd = q.Data();
  for (int i = 0; i < d; ++i) {
    const float* __restrict wrow = wd + static_cast<std::int64_t>(i) * k_dim;
    float acc = 0.0f;
    for (int k = 0; k < k_dim; ++k) {
      const float wik = wrow[k];
      if (wik == 0.0f) continue;
      acc += wik * hd[k];
    }
    qd[i] = acc + bd[i];
  }
}

/// glimpse = contexts · attnᵀ, row-dot form shared by both inference paths.
void GlimpseInto(const Tensor& contexts, const Tensor& attn, Tensor& glimpse) {
  const int d = contexts.Rows();
  const int n = contexts.Cols();
  for (int i = 0; i < d; ++i) {
    const float* row = contexts.Data() + static_cast<std::int64_t>(i) * n;
    float acc = 0.0f;
    for (int j = 0; j < n; ++j) acc += row[j] * attn.At(0, j);
    glimpse.At(i, 0) = acc;
  }
}

/// ScoreColumns restricted to the valid columns: scores[idx] for idx in
/// `valid_idx` only, masked entries untouched.  Per computed element the
/// accumulation is i-ascending exactly like ScoreColumns, so every value
/// the masked softmax reads is bit-identical.
/// SIMD fast path shared by the single and batched score kernels: scores
/// for the valid columns `vidx[0..m)` of `ref` (row stride `row_stride`)
/// against query elements `qd[i * q_stride]`.  Each row's valid entries are
/// gathered into a packed (d, m) `tmp` buffer (with the query element
/// folded in), FastTanh runs as ONE sweep over all d·m contiguous elements
/// — with ready-set masking m is tiny (≈ the frontier size), so per-row
/// tanh loops would spend more time in prologue/epilogue than in vector
/// lanes; the fused sweep keeps the vector units saturated — and a final
/// packed MAC reduces each column.  Per column the value sequence is still
/// i-ascending with the same operation order as a column-at-a-time loop,
/// so the packed form computes the exact same bits.  The kernel stays
/// O(d·|valid|); the gather is the only irregular access.
void ScoreColumnsFast(const float* __restrict rd, std::int64_t row_stride,
                      const float* __restrict qd, std::int64_t q_stride,
                      const float* __restrict vd, int d, const int* vidx,
                      int m, float* __restrict tmp, float* __restrict acc,
                      float* __restrict out) {
  for (int i = 0; i < d; ++i) {
    const float qi = qd[i * q_stride];
    const float* __restrict row = rd + i * row_stride;
    float* __restrict trow = tmp + static_cast<std::int64_t>(i) * m;
    for (int p = 0; p < m; ++p) trow[p] = row[vidx[p]] + qi;
  }
  const std::int64_t total = static_cast<std::int64_t>(d) * m;
  for (std::int64_t e = 0; e < total; ++e) tmp[e] = simd::FastTanh(tmp[e]);
  for (int p = 0; p < m; ++p) acc[p] = 0.0f;
  for (int i = 0; i < d; ++i) {
    const float vi = vd[i];
    const float* __restrict trow = tmp + static_cast<std::int64_t>(i) * m;
    for (int p = 0; p < m; ++p) acc[p] += vi * trow[p];
  }
  for (int p = 0; p < m; ++p) out[vidx[p]] = acc[p];
}

void ScoreColumnsMasked(const Tensor& ref, const Tensor& q, const Tensor& v,
                        const std::vector<int>& valid_idx, Tensor& tmp,
                        Tensor& acc, Tensor& scores) {
  const int d = ref.Rows();
  const int n = ref.Cols();
  const float* __restrict rd = ref.Data();
  const float* __restrict qd = q.Data();
  const float* __restrict vd = v.Data();
  float* __restrict out = scores.Data();
  if (simd::Enabled()) {
    ScoreColumnsFast(rd, n, qd, 1, vd, d, valid_idx.data(),
                     static_cast<int>(valid_idx.size()), tmp.Data(),
                     acc.Data(), out);
    return;
  }
  for (const int j : valid_idx) {
    float acc_j = 0.0f;
    const float* col = rd + j;
    for (int i = 0; i < d; ++i) {
      acc_j +=
          vd[i] * std::tanh(col[static_cast<std::int64_t>(i) * n] + qd[i]);
    }
    out[j] = acc_j;
  }
}

/// QueryInto widened across the batch: q is (d, B) with q[i·B+g] the i-th
/// element of graph g's query, h is (d, B) in the same layout
/// (LstmCell::BatchState).  Per (i, g) the k-accumulation is ascending with
/// the zero-weight skip — QueryInto's exact per-element order — while the
/// inner g loop is contiguous.  Output rows go two at a time over fixed
/// k-groups of four, like LstmCell::StepBatchInto: the partition into
/// ordered sweeps keeps every element's addition chain (and bits) intact
/// while giving the hardware two independent accumulation chains.
void QueryBatchInto(const Tensor& w, const Tensor& h, const Tensor& b,
                    int batch, Tensor& q) {
  const int d = w.Rows();
  const int k_dim = w.Cols();
  const float* __restrict wd = w.Data();
  const float* __restrict hd = h.Data();
  const float* __restrict bd = b.Data();
  float* __restrict qd = q.Data();
  int i = 0;
  for (; i + 2 <= d; i += 2) {
    const float* __restrict wra = wd + static_cast<std::int64_t>(i) * k_dim;
    const float* __restrict wrb = wra + k_dim;
    float* __restrict acca = qd + static_cast<std::int64_t>(i) * batch;
    float* __restrict accb = acca + batch;
    for (int g = 0; g < batch; ++g) acca[g] = 0.0f;
    for (int g = 0; g < batch; ++g) accb[g] = 0.0f;
    int k = 0;
    for (; k + 4 <= k_dim; k += 4) {
      const float a0 = wra[k], a1 = wra[k + 1], a2 = wra[k + 2],
                  a3 = wra[k + 3];
      const float b0 = wrb[k], b1 = wrb[k + 1], b2 = wrb[k + 2],
                  b3 = wrb[k + 3];
      const float* hk = hd + static_cast<std::int64_t>(k) * batch;
      if ((a0 != 0.0f) & (a1 != 0.0f) & (a2 != 0.0f) & (a3 != 0.0f) &
          (b0 != 0.0f) & (b1 != 0.0f) & (b2 != 0.0f) & (b3 != 0.0f)) {
        FusedAxpy4x2(hk, hk + batch, hk + 2 * batch, hk + 3 * batch, a0, a1,
                     a2, a3, b0, b1, b2, b3, acca, accb, batch);
      } else {
        for (int t = 0; t < 4; ++t) {
          if (wra[k + t] != 0.0f) {
            Axpy(hk + static_cast<std::int64_t>(t) * batch, wra[k + t], acca,
                 batch);
          }
        }
        for (int t = 0; t < 4; ++t) {
          if (wrb[k + t] != 0.0f) {
            Axpy(hk + static_cast<std::int64_t>(t) * batch, wrb[k + t], accb,
                 batch);
          }
        }
      }
    }
    for (; k < k_dim; ++k) {
      const float* hk = hd + static_cast<std::int64_t>(k) * batch;
      if (wra[k] != 0.0f) Axpy(hk, wra[k], acca, batch);
      if (wrb[k] != 0.0f) Axpy(hk, wrb[k], accb, batch);
    }
    const float bia = bd[i];
    const float bib = bd[i + 1];
    for (int g = 0; g < batch; ++g) acca[g] += bia;
    for (int g = 0; g < batch; ++g) accb[g] += bib;
  }
  for (; i < d; ++i) {
    const float* __restrict wrow = wd + static_cast<std::int64_t>(i) * k_dim;
    float* __restrict acc = qd + static_cast<std::int64_t>(i) * batch;
    for (int g = 0; g < batch; ++g) acc[g] = 0.0f;
    for (int k = 0; k < k_dim; ++k) {
      const float wik = wrow[k];
      if (wik == 0.0f) continue;
      Axpy(hd + static_cast<std::int64_t>(k) * batch, wik, acc, batch);
    }
    const float bi = bd[i];
    for (int g = 0; g < batch; ++g) acc[g] += bi;
  }
}

/// ScoreColumnsMasked over the packed batch: for graph g, every valid
/// absolute column j gets scores[j] = v^T tanh(ref[:,j] + q[:,g]).  The
/// i-accumulation per column matches ScoreColumnsMasked exactly.
void ScoreColumnsMaskedBatch(const Tensor& ref, const Tensor& q,
                             const Tensor& v,
                             const std::vector<int>& valid_idx,
                             const std::vector<int>& valid_begin, int batch,
                             Tensor& tmp, Tensor& acc, Tensor& scores) {
  const int d = ref.Rows();
  const int total = ref.Cols();
  const float* __restrict rd = ref.Data();
  const float* __restrict qd = q.Data();
  const float* __restrict vd = v.Data();
  float* __restrict out = scores.Data();
  if (simd::Enabled()) {
    // Graph g's query element i lives at qd[i·B + g]; the absolute column
    // indices in valid_idx address ref's packed rows directly, so each
    // graph is one ScoreColumnsFast call — the per-column value sequence
    // matches the single-graph fast path exactly.
    for (int g = 0; g < batch; ++g) {
      const int m = valid_begin[g + 1] - valid_begin[g];
      ScoreColumnsFast(rd, total, qd + g, batch, vd, d,
                       valid_idx.data() + valid_begin[g], m, tmp.Data(),
                       acc.Data(), out);
    }
    return;
  }
  for (int g = 0; g < batch; ++g) {
    for (int p = valid_begin[g]; p < valid_begin[g + 1]; ++p) {
      const int j = valid_idx[p];
      const float* col = rd + j;
      float acc_j = 0.0f;
      for (int i = 0; i < d; ++i) {
        acc_j +=
            vd[i] * std::tanh(col[static_cast<std::int64_t>(i) * total] +
                              qd[static_cast<std::int64_t>(i) * batch + g]);
      }
      out[j] = acc_j;
    }
  }
}

/// GlimpseIntoMasked over the packed batch: glimpse[i·B+g] accumulates
/// graph g's valid columns in ascending order — the single-path order.
void GlimpseBatchIntoMasked(const Tensor& contexts, const Tensor& attn,
                            const std::vector<int>& valid_idx,
                            const std::vector<int>& valid_begin, int batch,
                            Tensor& glimpse) {
  const int d = contexts.Rows();
  const int total = contexts.Cols();
  const float* __restrict ad = attn.Data();
  float* __restrict gd = glimpse.Data();
  for (int i = 0; i < d; ++i) {
    const float* row = contexts.Data() + static_cast<std::int64_t>(i) * total;
    float* __restrict grow = gd + static_cast<std::int64_t>(i) * batch;
    for (int g = 0; g < batch; ++g) {
      float acc = 0.0f;
      for (int p = valid_begin[g]; p < valid_begin[g + 1]; ++p) {
        const int j = valid_idx[p];
        acc += row[j] * ad[j];
      }
      grow[g] = acc;
    }
  }
}

/// GlimpseInto restricted to the valid columns.  Masked columns carry an
/// attention weight of exactly ±0, whose addition cannot change the
/// accumulated sum, so skipping them leaves the glimpse unchanged.
void GlimpseIntoMasked(const Tensor& contexts, const Tensor& attn,
                       const std::vector<int>& valid_idx, Tensor& glimpse) {
  const int d = contexts.Rows();
  const int n = contexts.Cols();
  const float* __restrict ad = attn.Data();
  for (int i = 0; i < d; ++i) {
    const float* row = contexts.Data() + static_cast<std::int64_t>(i) * n;
    float acc = 0.0f;
    for (const int j : valid_idx) acc += row[j] * ad[j];
    glimpse.At(i, 0) = acc;
  }
}

}  // namespace

Tensor PointerAttention::PointerLogits(const Tensor& contexts,
                                       const CachedRefs& refs, const Tensor& h,
                                       const std::vector<bool>& valid) const {
  const int n = contexts.Cols();
  const int d = hidden_dim_;

  // Glimpse.
  const Tensor q_g = Add(MatMul(store_.Value(wq_g_name_), h),
                         store_.Value(bg_name_));
  Tensor scores_g(1, n);
  ScoreColumns(refs.glimpse_ref, q_g, store_.Value(vg_name_), scores_g);
  const Tensor attn = MaskedSoftmax(scores_g, valid);
  Tensor glimpse(d, 1);
  GlimpseInto(contexts, attn, glimpse);

  // Pointer.
  const Tensor q_p = Add(MatMul(store_.Value(wq_p_name_), glimpse),
                         store_.Value(bp_name_));
  Tensor u(1, n);
  ScoreColumns(refs.pointer_ref, q_p, store_.Value(vp_name_), u);
  for (int j = 0; j < n; ++j) {
    u.At(0, j) = kLogitClip * std::tanh(u.At(0, j));
  }
  return u;
}

void PointerAttention::Scratch::Reserve(int hidden_dim, int nodes) {
  q.Resize(hidden_dim, 1);
  scores.Resize(1, nodes);
  attn.Resize(1, nodes);
  glimpse.Resize(hidden_dim, 1);
  valid_idx.reserve(nodes);
  fast_tmp.Resize(hidden_dim, nodes);
  fast_acc.Resize(1, nodes);
}

void PointerAttention::PointerLogitsInto(
    const Tensor& contexts, const CachedRefs& refs, const Tensor& h,
    const std::vector<std::uint8_t>& valid, Scratch& scratch,
    Tensor& logits) const {
  const int n = contexts.Cols();
  const int d = hidden_dim_;
  if (logits.Rows() != 1 || logits.Cols() != n || scratch.q.Rows() != d ||
      scratch.scores.Cols() != n || scratch.attn.Cols() != n ||
      scratch.glimpse.Rows() != d ||
      static_cast<int>(valid.size()) != n) {
    throw std::invalid_argument(
        "PointerAttention::PointerLogitsInto: bad buffer shape");
  }
  scratch.valid_idx.clear();
  for (int j = 0; j < n; ++j) {
    if (valid[j]) scratch.valid_idx.push_back(j);
  }

  // Glimpse.
  QueryInto(store_.Value(wq_g_name_), h, store_.Value(bg_name_), scratch.q);
  ScoreColumnsMasked(refs.glimpse_ref, scratch.q, store_.Value(vg_name_),
                     scratch.valid_idx, scratch.fast_tmp, scratch.fast_acc,
                     scratch.scores);
  MaskedSoftmaxInto(scratch.scores, valid, scratch.attn);
  GlimpseIntoMasked(contexts, scratch.attn, scratch.valid_idx,
                    scratch.glimpse);

  // Pointer.
  QueryInto(store_.Value(wq_p_name_), scratch.glimpse, store_.Value(bp_name_),
            scratch.q);
  ScoreColumnsMasked(refs.pointer_ref, scratch.q, store_.Value(vp_name_),
                     scratch.valid_idx, scratch.fast_tmp, scratch.fast_acc,
                     logits);
  float* u = logits.Data();
  if (simd::Enabled()) {
    for (const int j : scratch.valid_idx) {
      u[j] = kLogitClip * simd::FastTanh(u[j]);
    }
    return;
  }
  for (const int j : scratch.valid_idx) {
    u[j] = kLogitClip * std::tanh(u[j]);
  }
}

void PointerAttention::BatchScratch::Reserve(int hidden_dim, int nodes,
                                             int batch) {
  q.Resize(hidden_dim, batch);
  scores.Resize(1, nodes * batch);
  attn.Resize(1, nodes * batch);
  glimpse.Resize(hidden_dim, batch);
  valid_idx.reserve(static_cast<std::size_t>(nodes) * batch);
  valid_begin.reserve(static_cast<std::size_t>(batch) + 1);
  fast_tmp.Resize(hidden_dim, nodes);
  fast_acc.Resize(1, nodes);
}

void PointerAttention::PointerLogitsBatchInto(
    const Tensor& contexts, const CachedRefs& refs, const Tensor& h,
    const std::vector<std::uint8_t>& valid, int nodes, int batch,
    BatchScratch& scratch, Tensor& logits) const {
  const int d = hidden_dim_;
  const int total = nodes * batch;
  if (nodes <= 0 || batch <= 0 || contexts.Cols() != total ||
      contexts.Rows() != d || h.Rows() != d || h.Cols() != batch ||
      logits.Rows() != 1 || logits.Cols() != total ||
      scratch.q.Rows() != d || scratch.q.Cols() != batch ||
      scratch.scores.Cols() != total || scratch.attn.Cols() != total ||
      scratch.glimpse.Rows() != d || scratch.glimpse.Cols() != batch ||
      static_cast<int>(valid.size()) != total) {
    throw std::invalid_argument(
        "PointerAttention::PointerLogitsBatchInto: bad buffer shape");
  }
  scratch.valid_idx.clear();
  scratch.valid_begin.clear();
  for (int g = 0; g < batch; ++g) {
    scratch.valid_begin.push_back(static_cast<int>(scratch.valid_idx.size()));
    const int c0 = g * nodes;
    for (int j = 0; j < nodes; ++j) {
      if (valid[c0 + j]) scratch.valid_idx.push_back(c0 + j);
    }
  }
  scratch.valid_begin.push_back(static_cast<int>(scratch.valid_idx.size()));

  // Glimpse.
  QueryBatchInto(store_.Value(wq_g_name_), h, store_.Value(bg_name_), batch,
                 scratch.q);
  ScoreColumnsMaskedBatch(refs.glimpse_ref, scratch.q, store_.Value(vg_name_),
                          scratch.valid_idx, scratch.valid_begin, batch,
                          scratch.fast_tmp, scratch.fast_acc, scratch.scores);
  for (int g = 0; g < batch; ++g) {
    MaskedSoftmaxSliceInto(scratch.scores, valid, g * nodes, nodes,
                           scratch.attn);
  }
  GlimpseBatchIntoMasked(contexts, scratch.attn, scratch.valid_idx,
                         scratch.valid_begin, batch, scratch.glimpse);

  // Pointer.
  QueryBatchInto(store_.Value(wq_p_name_), scratch.glimpse,
                 store_.Value(bp_name_), batch, scratch.q);
  ScoreColumnsMaskedBatch(refs.pointer_ref, scratch.q, store_.Value(vp_name_),
                          scratch.valid_idx, scratch.valid_begin, batch,
                          scratch.fast_tmp, scratch.fast_acc, logits);
  float* u = logits.Data();
  if (simd::Enabled()) {
    for (const int j : scratch.valid_idx) {
      u[j] = kLogitClip * simd::FastTanh(u[j]);
    }
    return;
  }
  for (const int j : scratch.valid_idx) {
    u[j] = kLogitClip * std::tanh(u[j]);
  }
}

void PointerAttention::BindToTape(Tape& tape) {
  if (bound_tape_id_ == tape.Id()) return;
  bound_tape_id_ = tape.Id();
  const auto bind = [&](const std::string& name) {
    return tape.Param(store_.Value(name), &store_.Grad(name));
  };
  wref_g_ = bind(wref_g_name_);
  wq_g_ = bind(wq_g_name_);
  bg_ = bind(bg_name_);
  vg_ = bind(vg_name_);
  wref_p_ = bind(wref_p_name_);
  wq_p_ = bind(wq_p_name_);
  bp_ = bind(bp_name_);
  vp_ = bind(vp_name_);
}

PointerAttention::TapeRefs PointerAttention::Precompute(Tape& tape,
                                                        Ref contexts) {
  BindToTape(tape);
  TapeRefs refs;
  refs.contexts = contexts;
  refs.glimpse_ref = tape.MatMul(wref_g_, contexts);
  refs.pointer_ref = tape.MatMul(wref_p_, contexts);
  return refs;
}

Ref PointerAttention::PointerLogits(Tape& tape, const TapeRefs& refs, Ref h,
                                    const std::vector<bool>& valid) {
  BindToTape(tape);
  // Glimpse.
  const Ref q_g =
      tape.AddBroadcastCol(tape.MatMul(wq_g_, h), bg_);  // (d,1)
  const Ref act_g = tape.Tanh(tape.AddBroadcastCol(refs.glimpse_ref, q_g));
  const Ref scores_g = tape.MatMul(tape.Transpose(vg_), act_g);
  const Ref attn = tape.MaskedSoftmax(scores_g, valid);
  const Ref glimpse = tape.MatMul(refs.contexts, tape.Transpose(attn));

  // Pointer.
  const Ref q_p = tape.AddBroadcastCol(tape.MatMul(wq_p_, glimpse), bp_);
  const Ref act_p = tape.Tanh(tape.AddBroadcastCol(refs.pointer_ref, q_p));
  const Ref u = tape.MatMul(tape.Transpose(vp_), act_p);
  return tape.Scale(tape.Tanh(u), kLogitClip);
}

}  // namespace respect::nn
