#include "nn/attention.h"

#include <cmath>

#include <stdexcept>

namespace respect::nn {

PointerAttention::PointerAttention(ParamStore& store, std::string prefix,
                                   int hidden_dim, std::mt19937_64& rng)
    : store_(store), prefix_(std::move(prefix)), hidden_dim_(hidden_dim) {
  store_.GetOrCreate(prefix_ + ".Wref_g", hidden_dim_, hidden_dim_, rng);
  store_.GetOrCreate(prefix_ + ".Wq_g", hidden_dim_, hidden_dim_, rng);
  store_.GetOrCreate(prefix_ + ".b_g", hidden_dim_, 1, rng);
  store_.GetOrCreate(prefix_ + ".v_g", hidden_dim_, 1, rng);
  store_.GetOrCreate(prefix_ + ".Wref_p", hidden_dim_, hidden_dim_, rng);
  store_.GetOrCreate(prefix_ + ".Wq_p", hidden_dim_, hidden_dim_, rng);
  store_.GetOrCreate(prefix_ + ".b_p", hidden_dim_, 1, rng);
  store_.GetOrCreate(prefix_ + ".v_p", hidden_dim_, 1, rng);
}

PointerAttention::CachedRefs PointerAttention::Precompute(
    const Tensor& contexts) const {
  if (contexts.Rows() != hidden_dim_) {
    throw std::invalid_argument("PointerAttention: contexts must be (d, V)");
  }
  return CachedRefs{MatMul(store_.Value(prefix_ + ".Wref_g"), contexts),
                    MatMul(store_.Value(prefix_ + ".Wref_p"), contexts)};
}

namespace {

/// Fused attention-score kernel: scores[j] = v^T tanh(ref[:,j] + q), with no
/// (d, V) temporaries.  This runs once per decode step over every node, so
/// it dominates inference cost on large graphs.
void ScoreColumns(const Tensor& ref, const Tensor& q, const Tensor& v,
                  Tensor& scores) {
  const int d = ref.Rows();
  const int n = ref.Cols();
  for (int j = 0; j < n; ++j) scores.At(0, j) = 0.0f;
  for (int i = 0; i < d; ++i) {
    const float qi = q.At(i, 0);
    const float vi = v.At(i, 0);
    const float* row = ref.Data() + static_cast<std::int64_t>(i) * n;
    float* out = scores.Data();
    for (int j = 0; j < n; ++j) {
      out[j] += vi * std::tanh(row[j] + qi);
    }
  }
}

}  // namespace

Tensor PointerAttention::PointerLogits(const Tensor& contexts,
                                       const CachedRefs& refs, const Tensor& h,
                                       const std::vector<bool>& valid) const {
  const int n = contexts.Cols();
  const int d = hidden_dim_;

  // Glimpse.
  const Tensor q_g = Add(MatMul(store_.Value(prefix_ + ".Wq_g"), h),
                         store_.Value(prefix_ + ".b_g"));
  Tensor scores_g(1, n);
  ScoreColumns(refs.glimpse_ref, q_g, store_.Value(prefix_ + ".v_g"),
               scores_g);
  const Tensor attn = MaskedSoftmax(scores_g, valid);
  Tensor glimpse(d, 1);
  for (int i = 0; i < d; ++i) {
    const float* row = contexts.Data() + static_cast<std::int64_t>(i) * n;
    float acc = 0.0f;
    for (int j = 0; j < n; ++j) acc += row[j] * attn.At(0, j);
    glimpse.At(i, 0) = acc;
  }

  // Pointer.
  const Tensor q_p = Add(MatMul(store_.Value(prefix_ + ".Wq_p"), glimpse),
                         store_.Value(prefix_ + ".b_p"));
  Tensor u(1, n);
  ScoreColumns(refs.pointer_ref, q_p, store_.Value(prefix_ + ".v_p"), u);
  for (int j = 0; j < n; ++j) {
    u.At(0, j) = kLogitClip * std::tanh(u.At(0, j));
  }
  return u;
}

void PointerAttention::BindToTape(Tape& tape) {
  if (bound_tape_id_ == tape.Id()) return;
  bound_tape_id_ = tape.Id();
  const auto bind = [&](const std::string& name) {
    return tape.Param(store_.Value(prefix_ + name), &store_.Grad(prefix_ + name));
  };
  wref_g_ = bind(".Wref_g");
  wq_g_ = bind(".Wq_g");
  bg_ = bind(".b_g");
  vg_ = bind(".v_g");
  wref_p_ = bind(".Wref_p");
  wq_p_ = bind(".Wq_p");
  bp_ = bind(".b_p");
  vp_ = bind(".v_p");
}

PointerAttention::TapeRefs PointerAttention::Precompute(Tape& tape,
                                                        Ref contexts) {
  BindToTape(tape);
  TapeRefs refs;
  refs.contexts = contexts;
  refs.glimpse_ref = tape.MatMul(wref_g_, contexts);
  refs.pointer_ref = tape.MatMul(wref_p_, contexts);
  return refs;
}

Ref PointerAttention::PointerLogits(Tape& tape, const TapeRefs& refs, Ref h,
                                    const std::vector<bool>& valid) {
  BindToTape(tape);
  // Glimpse.
  const Ref q_g =
      tape.AddBroadcastCol(tape.MatMul(wq_g_, h), bg_);  // (d,1)
  const Ref act_g = tape.Tanh(tape.AddBroadcastCol(refs.glimpse_ref, q_g));
  const Ref scores_g = tape.MatMul(tape.Transpose(vg_), act_g);
  const Ref attn = tape.MaskedSoftmax(scores_g, valid);
  const Ref glimpse = tape.MatMul(refs.contexts, tape.Transpose(attn));

  // Pointer.
  const Ref q_p = tape.AddBroadcastCol(tape.MatMul(wq_p_, glimpse), bp_);
  const Ref act_p = tape.Tanh(tape.AddBroadcastCol(refs.pointer_ref, q_p));
  const Ref u = tape.MatMul(tape.Transpose(vp_), act_p);
  return tape.Scale(tape.Tanh(u), kLogitClip);
}

}  // namespace respect::nn
