// Opt-in fast activation path for the decode kernels.
//
// The fused decode kernels are bit-identical to the frozen reference decode
// because they call libm's tanh/exp in exactly the reference order.  libm
// calls also stop the compiler from vectorizing the gate and score loops.
// This module provides branch-free rational-polynomial approximations
// (FastTanh / FastSigmoid) that auto-vectorize under -O3, behind TWO gates,
// both off by default:
//
//   * compile time: the RESPECT_SIMD CMake option (-> Compiled()).  When it
//     is off, the fast path is not built and SetEnabled(true) is a no-op.
//   * run time: SetEnabled(true) (-> Enabled()).  Off by default even in a
//     RESPECT_SIMD build, so a binary with the option compiled in still
//     serves bit-exact results until a caller opts in.
//
// Contract: with the fast path enabled, decode sequences may differ from
// the scalar path only where the decision was numerically marginal; logits
// agree with the reference within a small absolute tolerance (enforced by
// tests/batch_decode_test.cc).  Never enable it under a bit-parity test.
#pragma once

#include <atomic>
#include <cmath>

namespace respect::nn::simd {

/// True when the library was built with -DRESPECT_SIMD=ON.
[[nodiscard]] constexpr bool Compiled() {
#ifdef RESPECT_SIMD
  return true;
#else
  return false;
#endif
}

namespace detail {
inline std::atomic<bool>& EnabledFlag() {
  static std::atomic<bool> flag{false};
  return flag;
}
}  // namespace detail

/// Requests the fast activation path on (true) or off (false) and returns
/// the EFFECTIVE value: always false when the fast path is not compiled in.
inline bool SetEnabled(bool enabled) {
  const bool effective = enabled && Compiled();
  detail::EnabledFlag().store(effective, std::memory_order_relaxed);
  return effective;
}

/// Whether decode kernels should take the fast activation branch.
[[nodiscard]] inline bool Enabled() {
  if constexpr (!Compiled()) return false;
  return detail::EnabledFlag().load(std::memory_order_relaxed);
}

/// Rational-polynomial float tanh (the classic cephes/Eigen ptanh form):
/// clamp to ±7.90531110763549805 (where float tanh saturates), then
/// p(x)/q(x) with p = x·(odd polynomial in x²), q = even polynomial in x².
/// Max absolute error vs std::tanh is a few ULP (≈1e-7 absolute in [-1,1]).
/// No libm call, no branches beyond the clamp — vectorizes cleanly.
[[nodiscard]] inline float FastTanh(float x) {
  constexpr float kClamp = 7.90531110763549805f;
  constexpr float alpha_1 = 4.89352455891786e-03f;
  constexpr float alpha_3 = 6.37261928875436e-04f;
  constexpr float alpha_5 = 1.48572235717979e-05f;
  constexpr float alpha_7 = 5.12229709037114e-08f;
  constexpr float alpha_9 = -8.60467152213735e-11f;
  constexpr float alpha_11 = 2.00018790482477e-13f;
  constexpr float alpha_13 = -2.76076847742355e-16f;
  constexpr float beta_0 = 4.89352518554385e-03f;
  constexpr float beta_2 = 2.26843463243900e-03f;
  constexpr float beta_4 = 1.18534705686654e-04f;
  constexpr float beta_6 = 1.19825839466702e-06f;

  const float cx = x < -kClamp ? -kClamp : (x > kClamp ? kClamp : x);
  const float x2 = cx * cx;
  float p = alpha_13;
  p = x2 * p + alpha_11;
  p = x2 * p + alpha_9;
  p = x2 * p + alpha_7;
  p = x2 * p + alpha_5;
  p = x2 * p + alpha_3;
  p = x2 * p + alpha_1;
  p = cx * p;
  float q = beta_6;
  q = x2 * q + beta_4;
  q = x2 * q + beta_2;
  q = x2 * q + beta_0;
  return p / q;
}

/// σ(x) = ½·tanh(x/2) + ½, sharing FastTanh's error bound.
[[nodiscard]] inline float FastSigmoid(float x) {
  return 0.5f * FastTanh(0.5f * x) + 0.5f;
}

}  // namespace respect::nn::simd
