// Reverse-mode automatic differentiation tape.
//
// Forward computation is eager: every op computes its value immediately and
// records (op kind, input refs, cached value) on the tape.  Backward() seeds
// the gradient of a scalar result and walks the tape in reverse, routing
// gradients through each op's adjoint rule.  Leaves created with Param()
// additionally accumulate their gradient into an external sink tensor (the
// parameter's grad buffer), which is how the REINFORCE trainer collects
// gradients across a batch.
//
// Gradient correctness of every op is pinned by central-difference tests
// (tests/autograd_test.cc) — the policy-gradient path depends on it.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "nn/tensor.h"

namespace respect::nn {

/// Reference to a tape node.
using Ref = int;

class Tape {
 public:
  /// Constant leaf: value participates in the graph, gradient is dropped.
  Ref Constant(Tensor value);

  /// Parameter leaf: gradient is accumulated into *grad_sink (must outlive
  /// the tape; shape must match value).
  Ref Param(Tensor value, Tensor* grad_sink);

  Ref MatMul(Ref a, Ref b);
  Ref Add(Ref a, Ref b);
  Ref Mul(Ref a, Ref b);  // elementwise
  Ref Scale(Ref a, float s);
  Ref Tanh(Ref a);
  Ref Sigmoid(Ref a);
  Ref AddBroadcastCol(Ref mat, Ref col);
  Ref ConcatCols(const std::vector<Ref>& cols);
  Ref SliceRows(Ref a, int r0, int r1);
  Ref SliceCols(Ref a, int c0, int c1);
  Ref Transpose(Ref a);

  /// Softmax over a (1, n) row restricted to `valid` entries (invalid get
  /// probability 0); differentiable through the valid entries.
  Ref MaskedSoftmax(Ref logits, std::vector<bool> valid);

  /// Scalar log p[pick] of the masked softmax of `logits` — the REINFORCE
  /// building block.  `pick` must be valid.
  Ref PickLogSoftmax(Ref logits, std::vector<bool> valid, int pick);

  /// Sum of all entries, as a (1,1) scalar.
  Ref Sum(Ref a);

  /// Process-unique id; lets weight holders detect that a cached binding
  /// belongs to a different (possibly reallocated) tape.
  [[nodiscard]] std::uint64_t Id() const { return id_; }

  [[nodiscard]] const Tensor& Value(Ref r) const;
  [[nodiscard]] const Tensor& Grad(Ref r) const;
  [[nodiscard]] int NodeCount() const { return static_cast<int>(nodes_.size()); }

  /// Runs the reverse pass from a (1,1) scalar node with seed gradient
  /// `seed`.  May be called once per tape.
  void Backward(Ref result, float seed = 1.0f);

 private:
  struct Node {
    Tensor value;
    Tensor grad;
    std::vector<Ref> inputs;
    // Adjoint: routes this node's grad into its inputs' grads.
    std::function<void(Tape&, Node&)> backward;
    Tensor* grad_sink = nullptr;
  };

  Ref Push(Tensor value, std::vector<Ref> inputs,
           std::function<void(Tape&, Node&)> backward);

  static std::uint64_t NextId();

  std::vector<Node> nodes_;
  std::uint64_t id_ = NextId();
  bool backward_run_ = false;

  friend struct TapeTestPeer;
};

}  // namespace respect::nn
