#include "nn/adam.h"

#include <cmath>

namespace respect::nn {

float Adam::Step(ParamStore& store) {
  ++t_;

  double norm_sq = 0.0;
  for (const auto& [name, value] : store.Values()) {
    const Tensor& g = store.Grad(name);
    for (std::int64_t i = 0; i < g.Size(); ++i) {
      norm_sq += static_cast<double>(g.Data()[i]) * g.Data()[i];
    }
  }
  const float norm = static_cast<float>(std::sqrt(norm_sq));
  float scale = 1.0f;
  if (config_.max_grad_norm > 0 && norm > config_.max_grad_norm) {
    scale = config_.max_grad_norm / norm;
  }

  const float bc1 = 1.0f - std::pow(config_.beta1, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(config_.beta2, static_cast<float>(t_));

  for (auto& [name, value] : store.MutableValues()) {
    Tensor& g = store.Grad(name);
    auto mit = m_.find(name);
    if (mit == m_.end()) {
      mit = m_.emplace(name, Tensor::Zeros(g.Rows(), g.Cols())).first;
      v_.emplace(name, Tensor::Zeros(g.Rows(), g.Cols()));
    }
    Tensor& m = mit->second;
    Tensor& v = v_.at(name);
    for (std::int64_t i = 0; i < g.Size(); ++i) {
      const float gi = g.Data()[i] * scale;
      m.Data()[i] = config_.beta1 * m.Data()[i] + (1.0f - config_.beta1) * gi;
      v.Data()[i] =
          config_.beta2 * v.Data()[i] + (1.0f - config_.beta2) * gi * gi;
      const float mhat = m.Data()[i] / bc1;
      const float vhat = v.Data()[i] / bc2;
      value.Data()[i] -=
          config_.learning_rate * mhat / (std::sqrt(vhat) + config_.epsilon);
    }
  }
  store.ZeroGrads();
  return norm;
}

}  // namespace respect::nn
