#include "nn/params.h"

#include <cstdint>
#include <fstream>
#include <stdexcept>

namespace respect::nn {

Tensor& ParamStore::GetOrCreate(const std::string& name, int rows, int cols,
                                std::mt19937_64& rng) {
  const auto it = values_.find(name);
  if (it != values_.end()) {
    if (it->second.Rows() != rows || it->second.Cols() != cols) {
      throw std::invalid_argument("ParamStore: shape conflict for " + name);
    }
    return it->second;
  }
  values_.emplace(name, Tensor::Xavier(rows, cols, rng));
  grads_.emplace(name, Tensor::Zeros(rows, cols));
  return values_.at(name);
}

Tensor& ParamStore::Value(const std::string& name) {
  const auto it = values_.find(name);
  if (it == values_.end()) {
    throw std::invalid_argument("ParamStore: unknown parameter " + name);
  }
  return it->second;
}

const Tensor& ParamStore::Value(const std::string& name) const {
  const auto it = values_.find(name);
  if (it == values_.end()) {
    throw std::invalid_argument("ParamStore: unknown parameter " + name);
  }
  return it->second;
}

Tensor& ParamStore::Grad(const std::string& name) {
  const auto it = grads_.find(name);
  if (it == grads_.end()) {
    throw std::invalid_argument("ParamStore: unknown parameter " + name);
  }
  return it->second;
}

bool ParamStore::Contains(const std::string& name) const {
  return values_.count(name) > 0;
}

void ParamStore::ZeroGrads() {
  for (auto& [name, grad] : grads_) grad.Fill(0.0f);
}

std::int64_t ParamStore::ScalarCount() const {
  std::int64_t total = 0;
  for (const auto& [name, value] : values_) total += value.Size();
  return total;
}

namespace {
constexpr std::uint32_t kMagic = 0x52505433;  // "RPT3"
}  // namespace

void ParamStore::Save(const std::string& path) const {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("ParamStore::Save: cannot open " + path);
  const std::uint32_t magic = kMagic;
  const std::uint32_t count = static_cast<std::uint32_t>(values_.size());
  os.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  os.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const auto& [name, value] : values_) {
    const std::uint32_t name_len = static_cast<std::uint32_t>(name.size());
    const std::int32_t rows = value.Rows();
    const std::int32_t cols = value.Cols();
    os.write(reinterpret_cast<const char*>(&name_len), sizeof(name_len));
    os.write(name.data(), name_len);
    os.write(reinterpret_cast<const char*>(&rows), sizeof(rows));
    os.write(reinterpret_cast<const char*>(&cols), sizeof(cols));
    os.write(reinterpret_cast<const char*>(value.Data()),
             static_cast<std::streamsize>(value.Size() * sizeof(float)));
  }
  if (!os) throw std::runtime_error("ParamStore::Save: write failed: " + path);
}

void ParamStore::Load(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("ParamStore::Load: cannot open " + path);
  std::uint32_t magic = 0, count = 0;
  is.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  is.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!is || magic != kMagic) {
    throw std::runtime_error("ParamStore::Load: bad header in " + path);
  }
  values_.clear();
  grads_.clear();
  for (std::uint32_t i = 0; i < count; ++i) {
    std::uint32_t name_len = 0;
    is.read(reinterpret_cast<char*>(&name_len), sizeof(name_len));
    if (!is || name_len > 4096) {
      throw std::runtime_error("ParamStore::Load: corrupt entry in " + path);
    }
    std::string name(name_len, '\0');
    is.read(name.data(), name_len);
    std::int32_t rows = 0, cols = 0;
    is.read(reinterpret_cast<char*>(&rows), sizeof(rows));
    is.read(reinterpret_cast<char*>(&cols), sizeof(cols));
    if (!is || rows < 0 || cols < 0 || rows > (1 << 20) || cols > (1 << 20)) {
      throw std::runtime_error("ParamStore::Load: corrupt shape in " + path);
    }
    Tensor t(rows, cols);
    is.read(reinterpret_cast<char*>(t.Data()),
            static_cast<std::streamsize>(t.Size() * sizeof(float)));
    if (!is) throw std::runtime_error("ParamStore::Load: truncated " + path);
    grads_.emplace(name, Tensor::Zeros(rows, cols));
    values_.emplace(std::move(name), std::move(t));
  }
}

}  // namespace respect::nn
