// Glimpse + pointer attention networks (Algorithm 1 of the paper; the
// attention mechanism of Bello et al. / Vinyals et al. pointer networks).
//
// Given the encoder context matrix C (hidden x |V|) and a decoder query q:
//   glimpse:  a = softmax(v_g^T tanh(W_ref_g C + (W_q_g q + b_g) ⊕))   (1,|V|)
//             g = C a^T                                                (d,1)
//   pointer:  u = 10·tanh(v_p^T tanh(W_ref_p C + (W_q_p g + b_p) ⊕))   (1,|V|)
// where ⊕ broadcasts the column across |V| and already-picked nodes are
// masked to -inf (probability zero) — "the logits of the nodes that appeared
// in the solution π are set to −∞" (§III-B).
#pragma once

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "nn/params.h"
#include "nn/tape.h"
#include "nn/tensor.h"

namespace respect::nn {

class PointerAttention {
 public:
  /// Creates (or rebinds to) parameters under `prefix` in `store`.
  PointerAttention(ParamStore& store, std::string prefix, int hidden_dim,
                   std::mt19937_64& rng);

  /// Logit clipping constant (Bello et al. use 10).
  static constexpr float kLogitClip = 10.0f;

  // ---- Inference path (no gradients) ----

  /// Precomputed W_ref C products, reused across decode steps.
  struct CachedRefs {
    Tensor glimpse_ref;  // (d, V)
    Tensor pointer_ref;  // (d, V)
  };
  [[nodiscard]] CachedRefs Precompute(const Tensor& contexts) const;

  /// Allocation-free Precompute: resizes and overwrites `refs`' tensors in
  /// place (storage reused across calls).
  void PrecomputeInto(const Tensor& contexts, CachedRefs& refs) const;

  /// Returns the masked pointer logits (1, V) for query h.
  [[nodiscard]] Tensor PointerLogits(const Tensor& contexts,
                                     const CachedRefs& refs, const Tensor& h,
                                     const std::vector<bool>& valid) const;

  /// Caller-owned scratch for PointerLogitsInto; Reserve() sizes every
  /// buffer (grow-only storage, so steady-state reuse never allocates).
  struct Scratch {
    Tensor q;                    // (d, 1) — glimpse then pointer query
    Tensor scores;               // (1, V) — glimpse attention scores
    Tensor attn;                 // (1, V) — glimpse attention weights
    Tensor glimpse;              // (d, 1)
    std::vector<int> valid_idx;  // indices of the step's valid columns
    Tensor fast_tmp;             // (d, V) — SIMD path: gathered ref cols + q
    Tensor fast_acc;             // (1, V) — SIMD path: packed score accum
    void Reserve(int hidden_dim, int nodes);
  };

  /// In-place inference path: writes the masked pointer logits into
  /// `logits` ((1, V), pre-sized by the caller) using only `scratch`'s
  /// buffers — no heap allocation.  `valid` uses 0/non-0 bytes (see
  /// MaskedSoftmaxInto).
  ///
  /// Only the VALID columns of `logits` are computed (masked entries are
  /// left stale): the masked softmax zeroes them regardless, so every
  /// observable value — and the decoded sequence — is identical to
  /// PointerLogits, while the per-step cost drops from O(d·V) to
  /// O(d·|valid|).  With ready-set masking (the deployment default) that is
  /// the difference between O(V) and O(deg) attention work per step.
  void PointerLogitsInto(const Tensor& contexts, const CachedRefs& refs,
                         const Tensor& h,
                         const std::vector<std::uint8_t>& valid,
                         Scratch& scratch, Tensor& logits) const;

  /// Caller-owned scratch for PointerLogitsBatchInto.  Same grow-only
  /// contract as Scratch; `valid_idx` holds every valid ABSOLUTE column of
  /// the packed layout, grouped by graph, with `valid_begin[g] ..
  /// valid_begin[g+1]` delimiting graph g's slice.
  struct BatchScratch {
    Tensor q;                      // (d, B) — glimpse then pointer queries
    Tensor scores;                 // (1, n·B) — glimpse attention scores
    Tensor attn;                   // (1, n·B) — glimpse attention weights
    Tensor glimpse;                // (d, B)
    std::vector<int> valid_idx;    // packed valid columns, grouped by graph
    std::vector<int> valid_begin;  // (B+1) offsets into valid_idx
    Tensor fast_tmp;               // (d, n) — SIMD path: gathered ref cols + q
    Tensor fast_acc;               // (1, n) — SIMD path: packed score accum
    void Reserve(int hidden_dim, int nodes, int batch);
  };

  /// Batched PointerLogitsInto over B same-node-count graphs packed side by
  /// side: `contexts` is (d, n·B) with column g·n+j = graph g's node j,
  /// `refs` the PrecomputeInto of that packed matrix, `h` the (d, B)
  /// lock-stepped decoder hidden state (LstmCell::BatchState layout), and
  /// `valid` an n·B byte mask in the same packing.  Writes the masked
  /// pointer logits into `logits` ((1, n·B)); like the single-graph path,
  /// only valid columns are computed and masked entries are left stale.
  ///
  /// The (d, n·B) ref products come out of the SAME MatMul kernel that the
  /// single path uses per graph, and every per-column accumulation here
  /// replicates the single path's order — so each graph's logits (and the
  /// per-graph softmax via MaskedSoftmaxSliceInto) are bit-identical to B
  /// independent PointerLogitsInto calls on the scalar path.
  void PointerLogitsBatchInto(const Tensor& contexts, const CachedRefs& refs,
                              const Tensor& h,
                              const std::vector<std::uint8_t>& valid,
                              int nodes, int batch, BatchScratch& scratch,
                              Tensor& logits) const;

  // ---- Training path (tape-recorded) ----

  struct TapeRefs {
    Ref contexts = -1;     // (d, V)
    Ref glimpse_ref = -1;  // (d, V)
    Ref pointer_ref = -1;  // (d, V)
  };
  [[nodiscard]] TapeRefs Precompute(Tape& tape, Ref contexts);

  /// Returns the clipped pointer logits node (1, V); masking happens inside
  /// the caller's PickLogSoftmax.
  [[nodiscard]] Ref PointerLogits(Tape& tape, const TapeRefs& refs, Ref h,
                                  const std::vector<bool>& valid);

 private:
  void BindToTape(Tape& tape);

  ParamStore& store_;
  std::string prefix_;
  // Full parameter names, precomputed so hot-path lookups never concatenate
  // strings (several exceed the SSO limit).  Tensors are re-looked-up per
  // call rather than cached by address, so ParamStore::Load stays safe.
  std::string wref_g_name_, wq_g_name_, bg_name_, vg_name_;
  std::string wref_p_name_, wq_p_name_, bp_name_, vp_name_;
  int hidden_dim_ = 0;

  std::uint64_t bound_tape_id_ = 0;
  Ref wref_g_ = -1, wq_g_ = -1, bg_ = -1, vg_ = -1;
  Ref wref_p_ = -1, wq_p_ = -1, bp_ = -1, vp_ = -1;
};

}  // namespace respect::nn
