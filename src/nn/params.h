// Named parameter store with gradient buffers and binary serialization.
//
// All trainable tensors of the LSTM-PtrNet live here.  The tape's Param()
// leaves reference the grad buffers; the Adam optimizer steps (value, grad)
// pairs; Save/Load round-trips everything so trained models can be reused by
// examples and benchmarks.
#pragma once

#include <map>
#include <random>
#include <string>

#include "nn/tensor.h"

namespace respect::nn {

class ParamStore {
 public:
  /// Creates (Xavier-initialized) or returns the existing named parameter.
  Tensor& GetOrCreate(const std::string& name, int rows, int cols,
                      std::mt19937_64& rng);

  [[nodiscard]] Tensor& Value(const std::string& name);
  [[nodiscard]] const Tensor& Value(const std::string& name) const;
  [[nodiscard]] Tensor& Grad(const std::string& name);
  [[nodiscard]] bool Contains(const std::string& name) const;

  /// Zeroes every gradient buffer (between optimizer steps).
  void ZeroGrads();

  /// Number of parameters (scalar count across all tensors).
  [[nodiscard]] std::int64_t ScalarCount() const;

  [[nodiscard]] const std::map<std::string, Tensor>& Values() const {
    return values_;
  }
  [[nodiscard]] std::map<std::string, Tensor>& MutableValues() {
    return values_;
  }

  /// Binary round trip.  Throws std::runtime_error on I/O or format errors.
  void Save(const std::string& path) const;
  void Load(const std::string& path);

 private:
  std::map<std::string, Tensor> values_;
  std::map<std::string, Tensor> grads_;
};

}  // namespace respect::nn
