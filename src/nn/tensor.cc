#include "nn/tensor.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

#include "nn/axpy.h"

namespace respect::nn {
namespace {

void CheckSameShape(const Tensor& a, const Tensor& b, const char* op) {
  if (!a.SameShape(b)) {
    throw std::invalid_argument(std::string(op) + ": shape mismatch (" +
                                std::to_string(a.Rows()) + "x" +
                                std::to_string(a.Cols()) + " vs " +
                                std::to_string(b.Rows()) + "x" +
                                std::to_string(b.Cols()) + ")");
  }
}

void CheckShape(const Tensor& t, int rows, int cols, const char* op) {
  if (t.Rows() != rows || t.Cols() != cols) {
    throw std::invalid_argument(std::string(op) + ": out must be " +
                                std::to_string(rows) + "x" +
                                std::to_string(cols) + ", got " +
                                std::to_string(t.Rows()) + "x" +
                                std::to_string(t.Cols()));
  }
}

/// Shared GEMM kernel; `out` must be zero-filled.  k is blocked so the active
/// slice of b stays cache-resident across rows of a, and the __restrict
/// pointers let the inner j loop vectorize.  Nonzero k-rows are bundled
/// four at a time (nn/axpy.h) so each sweep of the accumulator row pays for
/// four multiply-adds instead of one.  Per output element the additions
/// still happen in ascending-k order with the aik==0 skip, so the result is
/// bit-identical to the naive i/k/j triple loop.
void MatMulKernel(const Tensor& a, const Tensor& b, Tensor& out) {
  const int m = a.Rows();
  const int kk = a.Cols();
  const int n = b.Cols();
  constexpr int kBlock = 64;
  const float* __restrict ad = a.Data();
  const float* __restrict bd = b.Data();
  float* __restrict od = out.Data();
  for (int k0 = 0; k0 < kk; k0 += kBlock) {
    const int k1 = std::min(kk, k0 + kBlock);
    for (int i = 0; i < m; ++i) {
      const float* __restrict arow = ad + std::int64_t{i} * kk;
      float* __restrict orow = od + std::int64_t{i} * n;
      const float* rows[4];
      float coef[4];
      int nb = 0;
      for (int k = k0; k < k1; ++k) {
        const float aik = arow[k];
        if (aik == 0.0f) continue;
        coef[nb] = aik;
        rows[nb] = bd + std::int64_t{k} * n;
        if (++nb == 4) {
          FusedAxpy4(rows[0], rows[1], rows[2], rows[3], coef[0], coef[1],
                     coef[2], coef[3], orow, n);
          nb = 0;
        }
      }
      for (int r = 0; r < nb; ++r) Axpy(rows[r], coef[r], orow, n);
    }
  }
}

void CheckMatMulShapes(const Tensor& a, const Tensor& b) {
  if (a.Cols() != b.Rows()) {
    throw std::invalid_argument("MatMul: inner dimensions " +
                                std::to_string(a.Cols()) + " vs " +
                                std::to_string(b.Rows()));
  }
}

template <typename Mask>
void MaskedSoftmaxImpl(const Tensor& logits, const Mask& valid, Tensor& out) {
  if (logits.Rows() != 1 ||
      static_cast<int>(valid.size()) != logits.Cols()) {
    throw std::invalid_argument("MaskedSoftmax: logits must be (1, n) with "
                                "matching mask");
  }
  float max_logit = -std::numeric_limits<float>::infinity();
  for (int j = 0; j < logits.Cols(); ++j) {
    if (valid[j]) max_logit = std::max(max_logit, logits.At(0, j));
  }
  if (!std::isfinite(max_logit)) {
    throw std::invalid_argument("MaskedSoftmax: all entries masked");
  }
  out.Fill(0.0f);
  float denom = 0.0f;
  for (int j = 0; j < logits.Cols(); ++j) {
    if (valid[j]) {
      out.At(0, j) = std::exp(logits.At(0, j) - max_logit);
      denom += out.At(0, j);
    }
  }
  for (int j = 0; j < logits.Cols(); ++j) out.At(0, j) /= denom;
}

}  // namespace

Tensor Tensor::Xavier(int rows, int cols, std::mt19937_64& rng) {
  Tensor t(rows, cols);
  const float a = std::sqrt(6.0f / static_cast<float>(rows + cols));
  std::uniform_real_distribution<float> dist(-a, a);
  for (std::int64_t i = 0; i < t.Size(); ++i) t.Data()[i] = dist(rng);
  return t;
}

void Tensor::Accumulate(const Tensor& other) {
  CheckSameShape(*this, other, "Tensor::Accumulate");
  for (std::int64_t i = 0; i < Size(); ++i) data_[i] += other.data_[i];
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  CheckMatMulShapes(a, b);
  Tensor out(a.Rows(), b.Cols());
  MatMulKernel(a, b, out);
  return out;
}

void MatMulInto(const Tensor& a, const Tensor& b, Tensor& out) {
  CheckMatMulShapes(a, b);
  CheckShape(out, a.Rows(), b.Cols(), "MatMulInto");
  out.Fill(0.0f);
  MatMulKernel(a, b, out);
}

void AddInto(const Tensor& a, const Tensor& b, Tensor& out) {
  CheckSameShape(a, b, "AddInto");
  CheckShape(out, a.Rows(), a.Cols(), "AddInto");
  const float* __restrict ad = a.Data();
  const float* __restrict bd = b.Data();
  float* od = out.Data();
  for (std::int64_t i = 0; i < a.Size(); ++i) od[i] = ad[i] + bd[i];
}

void TanhInto(const Tensor& a, Tensor& out) {
  CheckShape(out, a.Rows(), a.Cols(), "TanhInto");
  const float* ad = a.Data();
  float* od = out.Data();
  for (std::int64_t i = 0; i < a.Size(); ++i) od[i] = std::tanh(ad[i]);
}

void SigmoidInto(const Tensor& a, Tensor& out) {
  CheckShape(out, a.Rows(), a.Cols(), "SigmoidInto");
  const float* ad = a.Data();
  float* od = out.Data();
  for (std::int64_t i = 0; i < a.Size(); ++i) {
    od[i] = 1.0f / (1.0f + std::exp(-ad[i]));
  }
}

void AddBroadcastColInPlace(Tensor& a, const Tensor& col) {
  if (col.Rows() != a.Rows() || col.Cols() != 1) {
    throw std::invalid_argument(
        "AddBroadcastColInPlace: col must be (rows, 1)");
  }
  for (int i = 0; i < a.Rows(); ++i) {
    const float c = col.At(i, 0);
    float* row = a.Data() + std::int64_t{i} * a.Cols();
    for (int j = 0; j < a.Cols(); ++j) row[j] += c;
  }
}

Tensor Add(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b, "Add");
  Tensor out = a;
  out.Accumulate(b);
  return out;
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b, "Sub");
  Tensor out = a;
  for (std::int64_t i = 0; i < out.Size(); ++i) out.Data()[i] -= b.Data()[i];
  return out;
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b, "Mul");
  Tensor out = a;
  for (std::int64_t i = 0; i < out.Size(); ++i) out.Data()[i] *= b.Data()[i];
  return out;
}

Tensor Scale(const Tensor& a, float s) {
  Tensor out = a;
  for (std::int64_t i = 0; i < out.Size(); ++i) out.Data()[i] *= s;
  return out;
}

Tensor Tanh(const Tensor& a) {
  Tensor out = a;
  for (std::int64_t i = 0; i < out.Size(); ++i) {
    out.Data()[i] = std::tanh(out.Data()[i]);
  }
  return out;
}

Tensor Sigmoid(const Tensor& a) {
  Tensor out = a;
  for (std::int64_t i = 0; i < out.Size(); ++i) {
    out.Data()[i] = 1.0f / (1.0f + std::exp(-out.Data()[i]));
  }
  return out;
}

Tensor AddBroadcastCol(const Tensor& a, const Tensor& col) {
  if (col.Rows() != a.Rows() || col.Cols() != 1) {
    throw std::invalid_argument("AddBroadcastCol: col must be (rows, 1)");
  }
  Tensor out = a;
  for (int i = 0; i < a.Rows(); ++i) {
    const float c = col.At(i, 0);
    for (int j = 0; j < a.Cols(); ++j) out.At(i, j) += c;
  }
  return out;
}

Tensor ConcatCols(const std::vector<Tensor>& cols) {
  if (cols.empty()) {
    throw std::invalid_argument("ConcatCols: empty input");
  }
  const int rows = cols.front().Rows();
  Tensor out(rows, static_cast<int>(cols.size()));
  for (int j = 0; j < static_cast<int>(cols.size()); ++j) {
    if (cols[j].Rows() != rows || cols[j].Cols() != 1) {
      throw std::invalid_argument("ConcatCols: all inputs must be (rows, 1)");
    }
    for (int i = 0; i < rows; ++i) out.At(i, j) = cols[j].At(i, 0);
  }
  return out;
}

Tensor SliceRows(const Tensor& a, int r0, int r1) {
  if (r0 < 0 || r1 > a.Rows() || r0 >= r1) {
    throw std::invalid_argument("SliceRows: bad range");
  }
  Tensor out(r1 - r0, a.Cols());
  for (int i = r0; i < r1; ++i) {
    for (int j = 0; j < a.Cols(); ++j) out.At(i - r0, j) = a.At(i, j);
  }
  return out;
}

Tensor SliceCols(const Tensor& a, int c0, int c1) {
  if (c0 < 0 || c1 > a.Cols() || c0 >= c1) {
    throw std::invalid_argument("SliceCols: bad range");
  }
  Tensor out(a.Rows(), c1 - c0);
  for (int i = 0; i < a.Rows(); ++i) {
    for (int j = c0; j < c1; ++j) out.At(i, j - c0) = a.At(i, j);
  }
  return out;
}

Tensor Transpose(const Tensor& a) {
  Tensor out(a.Cols(), a.Rows());
  for (int i = 0; i < a.Rows(); ++i) {
    for (int j = 0; j < a.Cols(); ++j) out.At(j, i) = a.At(i, j);
  }
  return out;
}

Tensor MaskedSoftmax(const Tensor& logits, const std::vector<bool>& valid) {
  Tensor out(1, logits.Cols());
  MaskedSoftmaxImpl(logits, valid, out);
  return out;
}

void MaskedSoftmaxInto(const Tensor& logits,
                       const std::vector<std::uint8_t>& valid, Tensor& out) {
  CheckShape(out, 1, logits.Cols(), "MaskedSoftmaxInto");
  MaskedSoftmaxImpl(logits, valid, out);
}

void MaskedSoftmaxSliceInto(const Tensor& logits,
                            const std::vector<std::uint8_t>& valid, int c0,
                            int n, Tensor& out) {
  if (logits.Rows() != 1 || c0 < 0 || n <= 0 || c0 + n > logits.Cols() ||
      static_cast<int>(valid.size()) < c0 + n) {
    throw std::invalid_argument("MaskedSoftmaxSliceInto: bad slice");
  }
  CheckShape(out, 1, logits.Cols(), "MaskedSoftmaxSliceInto");
  // Mirror MaskedSoftmaxImpl exactly within the slice: max over valid, exp
  // in ascending-j order, ascending-j denominator, then divide EVERY slice
  // entry by the denominator (masked entries are 0/denom = 0).
  const float* __restrict ld = logits.Data() + c0;
  float* __restrict od = out.Data() + c0;
  float max_logit = -std::numeric_limits<float>::infinity();
  for (int j = 0; j < n; ++j) {
    if (valid[c0 + j]) max_logit = std::max(max_logit, ld[j]);
  }
  if (!std::isfinite(max_logit)) {
    throw std::invalid_argument("MaskedSoftmax: all entries masked");
  }
  float denom = 0.0f;
  for (int j = 0; j < n; ++j) {
    if (valid[c0 + j]) {
      od[j] = std::exp(ld[j] - max_logit);
      denom += od[j];
    } else {
      od[j] = 0.0f;
    }
  }
  for (int j = 0; j < n; ++j) od[j] /= denom;
}

}  // namespace respect::nn
