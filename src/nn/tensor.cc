#include "nn/tensor.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

namespace respect::nn {
namespace {

void CheckSameShape(const Tensor& a, const Tensor& b, const char* op) {
  if (!a.SameShape(b)) {
    throw std::invalid_argument(std::string(op) + ": shape mismatch (" +
                                std::to_string(a.Rows()) + "x" +
                                std::to_string(a.Cols()) + " vs " +
                                std::to_string(b.Rows()) + "x" +
                                std::to_string(b.Cols()) + ")");
  }
}

}  // namespace

Tensor Tensor::Xavier(int rows, int cols, std::mt19937_64& rng) {
  Tensor t(rows, cols);
  const float a = std::sqrt(6.0f / static_cast<float>(rows + cols));
  std::uniform_real_distribution<float> dist(-a, a);
  for (std::int64_t i = 0; i < t.Size(); ++i) t.Data()[i] = dist(rng);
  return t;
}

void Tensor::Accumulate(const Tensor& other) {
  CheckSameShape(*this, other, "Tensor::Accumulate");
  for (std::int64_t i = 0; i < Size(); ++i) data_[i] += other.data_[i];
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  if (a.Cols() != b.Rows()) {
    throw std::invalid_argument("MatMul: inner dimensions " +
                                std::to_string(a.Cols()) + " vs " +
                                std::to_string(b.Rows()));
  }
  Tensor out(a.Rows(), b.Cols());
  for (int i = 0; i < a.Rows(); ++i) {
    for (int k = 0; k < a.Cols(); ++k) {
      const float aik = a.At(i, k);
      if (aik == 0.0f) continue;
      const float* brow = b.Data() + std::int64_t{k} * b.Cols();
      float* orow = out.Data() + std::int64_t{i} * out.Cols();
      for (int j = 0; j < b.Cols(); ++j) orow[j] += aik * brow[j];
    }
  }
  return out;
}

Tensor Add(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b, "Add");
  Tensor out = a;
  out.Accumulate(b);
  return out;
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b, "Sub");
  Tensor out = a;
  for (std::int64_t i = 0; i < out.Size(); ++i) out.Data()[i] -= b.Data()[i];
  return out;
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b, "Mul");
  Tensor out = a;
  for (std::int64_t i = 0; i < out.Size(); ++i) out.Data()[i] *= b.Data()[i];
  return out;
}

Tensor Scale(const Tensor& a, float s) {
  Tensor out = a;
  for (std::int64_t i = 0; i < out.Size(); ++i) out.Data()[i] *= s;
  return out;
}

Tensor Tanh(const Tensor& a) {
  Tensor out = a;
  for (std::int64_t i = 0; i < out.Size(); ++i) {
    out.Data()[i] = std::tanh(out.Data()[i]);
  }
  return out;
}

Tensor Sigmoid(const Tensor& a) {
  Tensor out = a;
  for (std::int64_t i = 0; i < out.Size(); ++i) {
    out.Data()[i] = 1.0f / (1.0f + std::exp(-out.Data()[i]));
  }
  return out;
}

Tensor AddBroadcastCol(const Tensor& a, const Tensor& col) {
  if (col.Rows() != a.Rows() || col.Cols() != 1) {
    throw std::invalid_argument("AddBroadcastCol: col must be (rows, 1)");
  }
  Tensor out = a;
  for (int i = 0; i < a.Rows(); ++i) {
    const float c = col.At(i, 0);
    for (int j = 0; j < a.Cols(); ++j) out.At(i, j) += c;
  }
  return out;
}

Tensor ConcatCols(const std::vector<Tensor>& cols) {
  if (cols.empty()) {
    throw std::invalid_argument("ConcatCols: empty input");
  }
  const int rows = cols.front().Rows();
  Tensor out(rows, static_cast<int>(cols.size()));
  for (int j = 0; j < static_cast<int>(cols.size()); ++j) {
    if (cols[j].Rows() != rows || cols[j].Cols() != 1) {
      throw std::invalid_argument("ConcatCols: all inputs must be (rows, 1)");
    }
    for (int i = 0; i < rows; ++i) out.At(i, j) = cols[j].At(i, 0);
  }
  return out;
}

Tensor SliceRows(const Tensor& a, int r0, int r1) {
  if (r0 < 0 || r1 > a.Rows() || r0 >= r1) {
    throw std::invalid_argument("SliceRows: bad range");
  }
  Tensor out(r1 - r0, a.Cols());
  for (int i = r0; i < r1; ++i) {
    for (int j = 0; j < a.Cols(); ++j) out.At(i - r0, j) = a.At(i, j);
  }
  return out;
}

Tensor SliceCols(const Tensor& a, int c0, int c1) {
  if (c0 < 0 || c1 > a.Cols() || c0 >= c1) {
    throw std::invalid_argument("SliceCols: bad range");
  }
  Tensor out(a.Rows(), c1 - c0);
  for (int i = 0; i < a.Rows(); ++i) {
    for (int j = c0; j < c1; ++j) out.At(i, j - c0) = a.At(i, j);
  }
  return out;
}

Tensor Transpose(const Tensor& a) {
  Tensor out(a.Cols(), a.Rows());
  for (int i = 0; i < a.Rows(); ++i) {
    for (int j = 0; j < a.Cols(); ++j) out.At(j, i) = a.At(i, j);
  }
  return out;
}

Tensor MaskedSoftmax(const Tensor& logits, const std::vector<bool>& valid) {
  if (logits.Rows() != 1 ||
      static_cast<int>(valid.size()) != logits.Cols()) {
    throw std::invalid_argument("MaskedSoftmax: logits must be (1, n) with "
                                "matching mask");
  }
  float max_logit = -std::numeric_limits<float>::infinity();
  for (int j = 0; j < logits.Cols(); ++j) {
    if (valid[j]) max_logit = std::max(max_logit, logits.At(0, j));
  }
  if (!std::isfinite(max_logit)) {
    throw std::invalid_argument("MaskedSoftmax: all entries masked");
  }
  Tensor out(1, logits.Cols());
  float denom = 0.0f;
  for (int j = 0; j < logits.Cols(); ++j) {
    if (valid[j]) {
      out.At(0, j) = std::exp(logits.At(0, j) - max_logit);
      denom += out.At(0, j);
    }
  }
  for (int j = 0; j < logits.Cols(); ++j) out.At(0, j) /= denom;
  return out;
}

}  // namespace respect::nn
