#include "nn/simd.h"

// Everything is inline in the header; this TU exists so the build has one
// home for the module (and a place for non-inline helpers if the fast path
// grows target-specific dispatch later).

namespace respect::nn::simd {}  // namespace respect::nn::simd
