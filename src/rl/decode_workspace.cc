#include "rl/decode_workspace.h"

#include "rl/embedding.h"

namespace respect::rl {

void DecodeWorkspace::Reserve(int hidden_dim, int nodes) {
  const int d = hidden_dim;
  const int n = nodes;
  emb.Resize(kFeatureDim, n);
  x_all.Resize(d, n);
  zx_enc.Resize(4 * d, n);
  zx_dec.Resize(4 * d, n);
  zx_d0.Resize(4 * d, 1);
  contexts.Resize(d, n);
  refs.glimpse_ref.Resize(d, n);
  refs.pointer_ref.Resize(d, n);
  attn.Reserve(d, n);
  state.h.Resize(d, 1);
  state.c.Resize(d, 1);
  gates.Resize(4 * d, 1);
  logits.Resize(1, n);
  probs.Resize(1, n);
  valid.resize(n);
  picked.resize(n);
  unpicked_parents.resize(n);
  sequence.reserve(n);
  // topo / topo_scratch / pos are sized by AnalyzeTopologyInto and the
  // decode itself (assign with steady-state capacity).
}

}  // namespace respect::rl
