#include "rl/scheduler.h"

#include <chrono>

#include "sched/postprocess.h"
#include "sched/rho.h"

namespace respect::rl {

RlScheduler::Result RlScheduler::Schedule(
    const graph::Dag& dag,
    const sched::PipelineConstraints& constraints) const {
  const auto start = std::chrono::steady_clock::now();
  Result result;
  result.sequence = agent_.DecodeGreedy(dag);
  result.schedule =
      sched::PackSequence(dag, result.sequence, constraints.num_stages);
  sched::PostProcess(dag, constraints, result.schedule);
  result.solve_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return result;
}

}  // namespace respect::rl
