#include "rl/scheduler.h"

#include <chrono>

#include "sched/postprocess.h"
#include "sched/rho.h"

namespace respect::rl {

RlScheduler::Result RlScheduler::ScheduleRaw(
    const graph::Dag& dag,
    const sched::PipelineConstraints& constraints) const {
  DecodeWorkspace ws;
  return ScheduleRaw(dag, constraints, ws);
}

RlScheduler::Result RlScheduler::ScheduleRaw(
    const graph::Dag& dag, const sched::PipelineConstraints& constraints,
    DecodeWorkspace& ws, const core::CancelToken& cancel) const {
  const auto start = std::chrono::steady_clock::now();
  Result result;
  result.sequence = agent_.DecodeGreedy(dag, ws, cancel);
  result.schedule =
      sched::PackSequence(dag, result.sequence, constraints.num_stages);
  result.solve_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return result;
}

std::vector<RlScheduler::Result> RlScheduler::ScheduleRawBatch(
    std::span<const graph::Dag* const> dags,
    const sched::PipelineConstraints& constraints,
    BatchDecodeWorkspace& ws) const {
  const auto start = std::chrono::steady_clock::now();
  const auto& sequences = agent_.DecodeGreedyBatch(dags, ws);
  std::vector<Result> results(dags.size());
  for (std::size_t g = 0; g < dags.size(); ++g) {
    results[g].sequence = sequences[g];
    results[g].schedule = sched::PackSequence(*dags[g], results[g].sequence,
                                              constraints.num_stages);
  }
  const double total =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  const double amortized = total / static_cast<double>(dags.size());
  for (Result& result : results) result.solve_seconds = amortized;
  return results;
}

RlScheduler::Result RlScheduler::Schedule(
    const graph::Dag& dag,
    const sched::PipelineConstraints& constraints) const {
  DecodeWorkspace ws;
  return Schedule(dag, constraints, ws);
}

RlScheduler::Result RlScheduler::Schedule(
    const graph::Dag& dag, const sched::PipelineConstraints& constraints,
    DecodeWorkspace& ws) const {
  const auto start = std::chrono::steady_clock::now();
  Result result = ScheduleRaw(dag, constraints, ws);
  sched::PostProcess(dag, constraints, result.schedule);
  // Full standalone inference time, repair included (see Result docs).
  result.solve_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return result;
}

}  // namespace respect::rl
