// Imitation rewards (Eq. 1 and Eq. 3 of the paper).
//
// The RL agent imitates a deterministic exact scheduler: for a training
// graph G the exact method yields the optimal schedule S and its canonical
// sequence γ; the agent's sequence π is packed by ρ into S′; the reward is
// the cosine similarity between the stage-label vectors S and S′ (Eq. 3), or
// — ablation form — between the raw sequences (Eq. 1).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/dag.h"
#include "sched/schedule.h"

namespace respect::rl {

/// Ground truth produced by the exact method for one training graph.
struct ImitationTarget {
  sched::Schedule schedule;              // exact-optimal stage assignment
  std::vector<graph::NodeId> gamma;      // canonical sequence γ
  std::vector<double> stage_vector;      // S (1-based stage labels)
};

/// Solves the graph exactly (branch-and-bound seeded by the DP partition;
/// `max_expansions` bounds the search on unlucky instances — the incumbent
/// is still a valid, near-optimal target).
[[nodiscard]] ImitationTarget ComputeTarget(const graph::Dag& dag,
                                            int num_stages,
                                            std::int64_t max_expansions = 50'000);

enum class RewardForm {
  kStageCosine,     // Eq. 3 — default
  kSequenceCosine,  // Eq. 1 — ablation
};

/// Reward of an agent sequence π against the target.  Always in [0, 1] for
/// the stage form (labels are positive).
[[nodiscard]] double ComputeReward(const graph::Dag& dag,
                                   const ImitationTarget& target,
                                   const std::vector<graph::NodeId>& pi,
                                   int num_stages, RewardForm form);

}  // namespace respect::rl
