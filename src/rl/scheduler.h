// RESPECT's RL scheduler — the deployable front end over the PtrNet agent.
//
// Schedule() runs one greedy decode (polynomial-time inference — the paper's
// headline speedup over exact/compiler baselines), packs the sequence with
// ρ, and applies the post-inference repairs so the result always satisfies
// the deployment constraints.
#pragma once

#include <string>
#include <vector>

#include "graph/dag.h"
#include "rl/ptrnet.h"
#include "sched/schedule.h"

namespace respect::rl {

class RlScheduler {
 public:
  explicit RlScheduler(const PtrNetConfig& config = {}) : agent_(config) {}

  /// Loads trained weights (see rl::Train / examples/train_scheduler).
  void LoadWeights(const std::string& path) { agent_.Load(path); }
  void SaveWeights(const std::string& path) const { agent_.Save(path); }

  [[nodiscard]] PtrNetAgent& Agent() { return agent_; }
  [[nodiscard]] const PtrNetAgent& Agent() const { return agent_; }

  struct Result {
    sched::Schedule schedule;
    std::vector<graph::NodeId> sequence;  // raw π before packing

    /// Schedule(): wall-clock of the full standalone inference (decode + ρ
    /// packing + post-inference repair).  ScheduleRaw(): decode + packing
    /// only — the quantity the engine adapter reports as solve_seconds
    /// (repair runs exactly once, in the façade, untimed — consistent with
    /// every other engine).
    double solve_seconds = 0.0;
  };

  /// End-to-end RESPECT inference: decode, pack, repair.  Const and free of
  /// shared mutable state, so one trained scheduler serves concurrent
  /// callers (the batch compilation path relies on this).  Repair runs
  /// exactly once (here); callers must not PostProcess the result again.
  [[nodiscard]] Result Schedule(const graph::Dag& dag,
                                const sched::PipelineConstraints& constraints) const;

  /// Same, decoding through a caller-owned workspace (zero steady-state
  /// allocations in the decode; see rl/decode_workspace.h for threading
  /// rules).
  [[nodiscard]] Result Schedule(const graph::Dag& dag,
                                const sched::PipelineConstraints& constraints,
                                DecodeWorkspace& ws) const;

  /// Repair-free entry point for callers that run the repair themselves
  /// (the engine adapter: the façade PostProcesses every engine's schedule
  /// exactly once).  Returns the packed-but-unrepaired schedule;
  /// solve_seconds covers decode + packing only.
  [[nodiscard]] Result ScheduleRaw(const graph::Dag& dag,
                                   const sched::PipelineConstraints& constraints) const;
  /// `cancel` (optional) is polled once per decode step and unwinds the
  /// solve with core::CancelledError when it fires.
  [[nodiscard]] Result ScheduleRaw(const graph::Dag& dag,
                                   const sched::PipelineConstraints& constraints,
                                   DecodeWorkspace& ws,
                                   const core::CancelToken& cancel = {}) const;

  /// Batched ScheduleRaw over same-node-count graphs: one lock-stepped
  /// greedy decode (PtrNetAgent::DecodeGreedyBatch) followed by per-graph
  /// ρ packing.  Results are index-aligned with `dags` and, on the scalar
  /// path, bit-identical to per-graph ScheduleRaw calls.  Each result's
  /// solve_seconds is the batch total amortized over the batch (decode
  /// work is shared, so per-graph attribution is inherently amortized).
  [[nodiscard]] std::vector<Result> ScheduleRawBatch(
      std::span<const graph::Dag* const> dags,
      const sched::PipelineConstraints& constraints,
      BatchDecodeWorkspace& ws) const;

 private:
  PtrNetAgent agent_;
};

}  // namespace respect::rl
