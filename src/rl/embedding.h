// DNN computational-graph embedding (Fig. 1a, step 2).
//
// Each node is embedded from four groups of features, exactly the columns
// the paper describes:
//  * absolute coordinates — the node's ASAP topological level;
//  * relative coordinates — its parents' topological levels (dependency
//    constraints) with 0 for sources;
//  * node/parent IDs — hashes of the operator names, -1 for a source's
//    missing parents;
//  * memory — the operator's parameter and activation footprints.
// Feature groups can be disabled for the ablation benchmarks; disabled
// groups are zeroed so tensor shapes (and trained weights) stay compatible.
#pragma once

#include "graph/dag.h"
#include "graph/topology.h"
#include "nn/tensor.h"

namespace respect::rl {

struct EmbeddingConfig {
  bool include_topology = true;  // absolute + relative coordinates
  bool include_ids = true;       // hashed node / parent IDs
  bool include_memory = true;    // parameter + activation bytes
};

/// Number of raw feature columns per node.
inline constexpr int kFeatureDim = 8;

/// Embeds every node of `dag`; returns a (kFeatureDim, |V|) matrix whose
/// column v is node v's feature vector.
[[nodiscard]] nn::Tensor EmbedGraph(const graph::Dag& dag,
                                    const EmbeddingConfig& config);

/// Allocation-free variant for hot loops: writes into `out` (resized to
/// (kFeatureDim, |V|), storage reused) and takes the caller's topology
/// analysis instead of recomputing it.  Identical values to EmbedGraph.
void EmbedGraphInto(const graph::Dag& dag, const EmbeddingConfig& config,
                    const graph::TopoInfo& topo, nn::Tensor& out);

}  // namespace respect::rl
