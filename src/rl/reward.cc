#include "rl/reward.h"

#include "exact/bnb_scheduler.h"
#include "sched/postprocess.h"
#include "sched/rho.h"

namespace respect::rl {

ImitationTarget ComputeTarget(const graph::Dag& dag, int num_stages,
                              std::int64_t max_expansions) {
  exact::BnbConfig config;
  config.num_stages = num_stages;
  config.max_expansions = max_expansions;
  const exact::BnbResult result = exact::SolveExact(dag, config);

  ImitationTarget target;
  target.schedule = result.schedule;
  target.gamma = sched::ScheduleToSequence(dag, result.schedule);
  target.stage_vector = sched::StageVector(result.schedule);
  return target;
}

double ComputeReward(const graph::Dag& dag, const ImitationTarget& target,
                     const std::vector<graph::NodeId>& pi, int num_stages,
                     RewardForm form) {
  if (form == RewardForm::kSequenceCosine) {
    // Eq. 1: cosine over the raw index sequences (1-based so the vectors are
    // never zero).
    std::vector<double> a(pi.size()), b(target.gamma.size());
    for (std::size_t i = 0; i < pi.size(); ++i) {
      a[i] = static_cast<double>(pi[i] + 1);
    }
    for (std::size_t i = 0; i < target.gamma.size(); ++i) {
      b[i] = static_cast<double>(target.gamma[i] + 1);
    }
    return sched::CosineSimilarity(a, b);
  }

  // Eq. 3: pack π with ρ, repair dependencies (the paper's post-inference
  // step), then compare stage vectors.
  sched::Schedule packed = sched::PackSequence(dag, pi, num_stages);
  sched::RepairDependencies(dag, packed);
  return sched::CosineSimilarity(sched::StageVector(packed),
                                 target.stage_vector);
}

}  // namespace respect::rl
