#include "rl/ptrnet.h"

#include <algorithm>
#include <stdexcept>

#include "graph/topology.h"

namespace respect::rl {
namespace {

/// Samples an index from a (1, n) probability row.
int SampleIndex(const nn::Tensor& probs, std::mt19937_64& rng) {
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  double r = unit(rng);
  int last_valid = -1;
  for (int j = 0; j < probs.Cols(); ++j) {
    const double p = probs.At(0, j);
    if (p <= 0.0) continue;
    last_valid = j;
    r -= p;
    if (r <= 0.0) return j;
  }
  if (last_valid < 0) {
    throw std::logic_error("SampleIndex: degenerate distribution");
  }
  return last_valid;  // numeric slack lands on the last valid entry
}

/// Valid-node mask for the tape-recorded training path (the inference path
/// uses the workspace's byte mask via StepMaskInto).
std::vector<bool> StepMaskVec(MaskingMode masking,
                              const std::vector<bool>& picked,
                              const std::vector<int>& unpicked_parents) {
  const int n = static_cast<int>(picked.size());
  std::vector<bool> valid(n);
  for (int j = 0; j < n; ++j) {
    valid[j] = !picked[j] && (masking == MaskingMode::kVisitedOnly ||
                              unpicked_parents[j] == 0);
  }
  return valid;
}

int ArgmaxIndex(const nn::Tensor& probs) {
  int best = -1;
  float best_p = -1.0f;
  for (int j = 0; j < probs.Cols(); ++j) {
    if (probs.At(0, j) > best_p) {
      best_p = probs.At(0, j);
      best = j;
    }
  }
  return best;
}

/// ArgmaxIndex over the column slice [c0, c0+n), returning the index
/// RELATIVE to c0.  Same ascending strictly-greater scan (first max wins),
/// so the batched decode picks exactly what the single path would.
int ArgmaxIndexRange(const nn::Tensor& probs, int c0, int n) {
  int best = -1;
  float best_p = -1.0f;
  for (int j = 0; j < n; ++j) {
    if (probs.At(0, c0 + j) > best_p) {
      best_p = probs.At(0, c0 + j);
      best = j;
    }
  }
  return best;
}

}  // namespace

PtrNetAgent::PtrNetAgent(const PtrNetConfig& config)
    : config_(config),
      init_rng_(config.init_seed),
      encoder_(store_, "encoder", config.hidden_dim, config.hidden_dim,
               init_rng_),
      decoder_(store_, "decoder", config.hidden_dim, config.hidden_dim,
               init_rng_),
      attention_(store_, "attention", config.hidden_dim, init_rng_) {
  store_.GetOrCreate("input.W", config_.hidden_dim, kFeatureDim, init_rng_);
  store_.GetOrCreate("input.b", config_.hidden_dim, 1, init_rng_);
  store_.GetOrCreate("decoder.d0", config_.hidden_dim, 1, init_rng_);
}

void PtrNetAgent::StepMaskInto(DecodeWorkspace& ws) const {
  const int n = static_cast<int>(ws.picked.size());
  for (int j = 0; j < n; ++j) {
    ws.valid[j] =
        !ws.picked[j] && (config_.masking == MaskingMode::kVisitedOnly ||
                          ws.unpicked_parents[j] == 0)
            ? 1
            : 0;
  }
}

const std::vector<graph::NodeId>& PtrNetAgent::DecodeImpl(
    const graph::Dag& dag, std::mt19937_64* rng, DecodeWorkspace& ws,
    const core::CancelToken& cancel) const {
  const int n = dag.NodeCount();
  const int d = config_.hidden_dim;
  ws.Reserve(d, n);

  graph::AnalyzeTopologyInto(dag, ws.topo_scratch, ws.topo);
  ws.pos.assign(n, -1);
  for (int j = 0; j < n; ++j) ws.pos[ws.topo.order[j]] = j;

  // Input queue q follows the ASAP topological order (§III-A).
  EmbedGraphInto(dag, config_.embedding, ws.topo, ws.emb);
  nn::MatMulInto(store_.Value("input.W"), ws.emb, ws.x_all);
  nn::AddBroadcastColInPlace(ws.x_all, store_.Value("input.b"));

  // Hoisted input projections: one GEMM per LSTM covers every step's Wx·x,
  // so the recurrent loops below pay only the Wh·h GEMV per step.
  nn::MatMulInto(encoder_.InputWeight(), ws.x_all, ws.zx_enc);
  nn::MatMulInto(decoder_.InputWeight(), ws.x_all, ws.zx_dec);
  nn::MatMulInto(decoder_.InputWeight(), store_.Value("decoder.d0"), ws.zx_d0);

  // Encoder sweep, contexts written column-by-column into C.
  ws.state.h.Fill(0.0f);
  ws.state.c.Fill(0.0f);
  float* ctx = ws.contexts.Data();
  for (int j = 0; j < n; ++j) {
    const graph::NodeId v = ws.topo.order[j];
    encoder_.StepInto(ws.zx_enc, v, ws.gates, ws.state);
    const float* h = ws.state.h.Data();
    for (int i = 0; i < d; ++i) ctx[std::int64_t{i} * n + j] = h[i];
  }
  attention_.PrecomputeInto(ws.contexts, ws.refs);

  // Decoder: position-indexed bookkeeping.  The encoder's final state
  // carries over as the decoder's initial state in place.
  std::fill(ws.picked.begin(), ws.picked.end(), std::uint8_t{0});
  for (int j = 0; j < n; ++j) {
    ws.unpicked_parents[j] =
        static_cast<int>(dag.Parents(ws.topo.order[j]).size());
  }

  ws.sequence.clear();
  const nn::Tensor* zx = &ws.zx_d0;  // first input: trainable d0 projection
  int zx_col = 0;
  for (int t = 0; t < n; ++t) {
    cancel.ThrowIfCancelled("rl decode step");
    decoder_.StepInto(*zx, zx_col, ws.gates, ws.state);
    StepMaskInto(ws);
    attention_.PointerLogitsInto(ws.contexts, ws.refs, ws.state.h, ws.valid,
                                 ws.attn, ws.logits);
    nn::MaskedSoftmaxInto(ws.logits, ws.valid, ws.probs);
    const int j =
        rng == nullptr ? ArgmaxIndex(ws.probs) : SampleIndex(ws.probs, *rng);
    const graph::NodeId v = ws.topo.order[j];
    ws.picked[j] = 1;
    for (const graph::NodeId c : dag.Children(v)) {
      --ws.unpicked_parents[ws.pos[c]];
    }
    ws.sequence.push_back(v);
    zx = &ws.zx_dec;
    zx_col = v;
  }
  return ws.sequence;
}

std::vector<graph::NodeId> PtrNetAgent::DecodeGreedy(
    const graph::Dag& dag) const {
  DecodeWorkspace ws;
  return DecodeImpl(dag, nullptr, ws);
}

std::vector<graph::NodeId> PtrNetAgent::DecodeSampled(
    const graph::Dag& dag, std::mt19937_64& rng) const {
  DecodeWorkspace ws;
  return DecodeImpl(dag, &rng, ws);
}

const std::vector<graph::NodeId>& PtrNetAgent::DecodeGreedy(
    const graph::Dag& dag, DecodeWorkspace& ws,
    const core::CancelToken& cancel) const {
  return DecodeImpl(dag, nullptr, ws, cancel);
}

const std::vector<std::vector<graph::NodeId>>& PtrNetAgent::DecodeGreedyBatch(
    std::span<const graph::Dag* const> dags, BatchDecodeWorkspace& ws) const {
  const int batch = static_cast<int>(dags.size());
  if (batch <= 0) {
    throw std::invalid_argument("DecodeGreedyBatch: empty batch");
  }
  const int n = dags[0]->NodeCount();
  for (const graph::Dag* dag : dags) {
    if (dag == nullptr || dag->NodeCount() != n) {
      throw std::invalid_argument(
          "DecodeGreedyBatch: all graphs must have the same node count");
    }
  }
  const int d = config_.hidden_dim;
  const int total = n * batch;
  ws.Reserve(d, n, batch);

  // Per-graph analysis and packed embedding: emb column g·n+v is graph g's
  // node-v feature vector, so every downstream packed column g·n+v matches
  // the single path's column v for graph g bit-for-bit (the shared MatMul
  // kernel is column-independent).
  float* embd = ws.emb.Data();
  for (int g = 0; g < batch; ++g) {
    graph::AnalyzeTopologyInto(*dags[g], ws.topo_scratch, ws.topos[g]);
    ws.pos[g].assign(n, -1);
    for (int j = 0; j < n; ++j) ws.pos[g][ws.topos[g].order[j]] = j;
    EmbedGraphInto(*dags[g], config_.embedding, ws.topos[g], ws.emb_one);
    const float* one = ws.emb_one.Data();
    for (int i = 0; i < kFeatureDim; ++i) {
      std::copy(one + std::int64_t{i} * n, one + std::int64_t{i} * n + n,
                embd + std::int64_t{i} * total + std::int64_t{g} * n);
    }
  }
  nn::MatMulInto(store_.Value("input.W"), ws.emb, ws.x_all);
  nn::AddBroadcastColInPlace(ws.x_all, store_.Value("input.b"));

  // Hoisted input projections over the whole packed batch.
  nn::MatMulInto(encoder_.InputWeight(), ws.x_all, ws.zx_enc);
  nn::MatMulInto(decoder_.InputWeight(), ws.x_all, ws.zx_dec);
  nn::MatMulInto(decoder_.InputWeight(), store_.Value("decoder.d0"), ws.zx_d0);

  // Lock-stepped encoder sweep: one StepBatchInto per position, contexts
  // scattered to column g·n+j (graph g, position j).
  ws.state.h.Fill(0.0f);
  ws.state.c.Fill(0.0f);
  float* ctx = ws.contexts.Data();
  for (int j = 0; j < n; ++j) {
    for (int g = 0; g < batch; ++g) {
      ws.zx_cols[g] = g * n + ws.topos[g].order[j];
    }
    encoder_.StepBatchInto(ws.zx_enc, ws.zx_cols.data(), batch, ws.gates,
                           ws.state);
    const float* h = ws.state.h.Data();
    for (int i = 0; i < d; ++i) {
      const float* hrow = h + std::int64_t{i} * batch;
      float* crow = ctx + std::int64_t{i} * total + j;
      for (int g = 0; g < batch; ++g) crow[std::int64_t{g} * n] = hrow[g];
    }
  }
  attention_.PrecomputeInto(ws.contexts, ws.refs);

  // Decoder bookkeeping, packed position-indexed; the encoder's final
  // (d, B) state carries over as the decoder's initial state in place.
  std::fill(ws.picked.begin(), ws.picked.begin() + total, std::uint8_t{0});
  for (int g = 0; g < batch; ++g) {
    for (int j = 0; j < n; ++j) {
      ws.unpicked_parents[g * n + j] =
          static_cast<int>(dags[g]->Parents(ws.topos[g].order[j]).size());
    }
    ws.sequences[g].clear();
  }

  const nn::Tensor* zx = &ws.zx_d0;  // first input: shared d0 projection
  for (int g = 0; g < batch; ++g) ws.zx_cols[g] = 0;
  for (int t = 0; t < n; ++t) {
    decoder_.StepBatchInto(*zx, ws.zx_cols.data(), batch, ws.gates, ws.state);
    for (int g = 0; g < batch; ++g) {
      const int c0 = g * n;
      for (int j = 0; j < n; ++j) {
        ws.valid[c0 + j] =
            !ws.picked[c0 + j] &&
                    (config_.masking == MaskingMode::kVisitedOnly ||
                     ws.unpicked_parents[c0 + j] == 0)
                ? 1
                : 0;
      }
    }
    attention_.PointerLogitsBatchInto(ws.contexts, ws.refs, ws.state.h,
                                      ws.valid, n, batch, ws.attn, ws.logits);
    for (int g = 0; g < batch; ++g) {
      const int c0 = g * n;
      nn::MaskedSoftmaxSliceInto(ws.logits, ws.valid, c0, n, ws.probs);
      const int j = ArgmaxIndexRange(ws.probs, c0, n);
      const graph::NodeId v = ws.topos[g].order[j];
      ws.picked[c0 + j] = 1;
      for (const graph::NodeId c : dags[g]->Children(v)) {
        --ws.unpicked_parents[c0 + ws.pos[g][c]];
      }
      ws.sequences[g].push_back(v);
      ws.zx_cols[g] = c0 + v;
    }
    zx = &ws.zx_dec;
  }
  return ws.sequences;
}

const std::vector<graph::NodeId>& PtrNetAgent::DecodeSampled(
    const graph::Dag& dag, std::mt19937_64& rng, DecodeWorkspace& ws) const {
  return DecodeImpl(dag, &rng, ws);
}

PtrNetAgent::SampleResult PtrNetAgent::SampleWithTape(const graph::Dag& dag,
                                                      nn::Tape& tape,
                                                      std::mt19937_64& rng) {
  const graph::TopoInfo topo = graph::AnalyzeTopology(dag);
  const int n = dag.NodeCount();
  const std::vector<int> pos = graph::OrderPositions(topo.order, n);

  const nn::Ref w_in = tape.Param(store_.Value("input.W"),
                                  &store_.Grad("input.W"));
  const nn::Ref b_in = tape.Param(store_.Value("input.b"),
                                  &store_.Grad("input.b"));
  const nn::Ref emb = tape.Constant(EmbedGraph(dag, config_.embedding));
  const nn::Ref x_all =
      tape.AddBroadcastCol(tape.MatMul(w_in, emb), b_in);

  nn::LstmCell::TapeState enc = encoder_.InitialState(tape);
  std::vector<nn::Ref> contexts;
  contexts.reserve(n);
  for (int j = 0; j < n; ++j) {
    const graph::NodeId v = topo.order[j];
    enc = encoder_.Step(tape, tape.SliceCols(x_all, v, v + 1), enc);
    contexts.push_back(enc.h);
  }
  const nn::Ref C = tape.ConcatCols(contexts);
  nn::PointerAttention::TapeRefs refs = attention_.Precompute(tape, C);

  std::vector<bool> picked(n, false);
  std::vector<int> unpicked_parents(n, 0);
  for (int j = 0; j < n; ++j) {
    unpicked_parents[j] = static_cast<int>(dag.Parents(topo.order[j]).size());
  }

  nn::LstmCell::TapeState dec{enc.h, enc.c};
  nn::Ref d_input = tape.Param(store_.Value("decoder.d0"),
                               &store_.Grad("decoder.d0"));
  SampleResult result;
  result.sequence.reserve(n);
  nn::Ref log_prob_sum = -1;
  for (int t = 0; t < n; ++t) {
    dec = decoder_.Step(tape, d_input, dec);
    const std::vector<bool> valid =
        StepMaskVec(config_.masking, picked, unpicked_parents);
    const nn::Ref logits = attention_.PointerLogits(tape, refs, dec.h, valid);
    const nn::Tensor probs = nn::MaskedSoftmax(tape.Value(logits), valid);
    const int j = SampleIndex(probs, rng);
    const nn::Ref logp = tape.PickLogSoftmax(logits, valid, j);
    log_prob_sum = (log_prob_sum < 0) ? logp : tape.Add(log_prob_sum, logp);

    const graph::NodeId v = topo.order[j];
    picked[j] = true;
    for (const graph::NodeId c : dag.Children(v)) {
      --unpicked_parents[pos[c]];
    }
    result.sequence.push_back(v);
    d_input = tape.SliceCols(x_all, v, v + 1);
  }
  result.log_prob_sum = log_prob_sum;
  return result;
}

}  // namespace respect::rl
