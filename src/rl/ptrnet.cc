#include "rl/ptrnet.h"

#include <stdexcept>

#include "graph/topology.h"

namespace respect::rl {
namespace {

/// Samples an index from a (1, n) probability row.
int SampleIndex(const nn::Tensor& probs, std::mt19937_64& rng) {
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  double r = unit(rng);
  int last_valid = -1;
  for (int j = 0; j < probs.Cols(); ++j) {
    const double p = probs.At(0, j);
    if (p <= 0.0) continue;
    last_valid = j;
    r -= p;
    if (r <= 0.0) return j;
  }
  if (last_valid < 0) {
    throw std::logic_error("SampleIndex: degenerate distribution");
  }
  return last_valid;  // numeric slack lands on the last valid entry
}

int ArgmaxIndex(const nn::Tensor& probs) {
  int best = -1;
  float best_p = -1.0f;
  for (int j = 0; j < probs.Cols(); ++j) {
    if (probs.At(0, j) > best_p) {
      best_p = probs.At(0, j);
      best = j;
    }
  }
  return best;
}

}  // namespace

PtrNetAgent::PtrNetAgent(const PtrNetConfig& config)
    : config_(config),
      init_rng_(config.init_seed),
      encoder_(store_, "encoder", config.hidden_dim, config.hidden_dim,
               init_rng_),
      decoder_(store_, "decoder", config.hidden_dim, config.hidden_dim,
               init_rng_),
      attention_(store_, "attention", config.hidden_dim, init_rng_) {
  store_.GetOrCreate("input.W", config_.hidden_dim, kFeatureDim, init_rng_);
  store_.GetOrCreate("input.b", config_.hidden_dim, 1, init_rng_);
  store_.GetOrCreate("decoder.d0", config_.hidden_dim, 1, init_rng_);
}

std::vector<bool> PtrNetAgent::StepMask(
    const std::vector<bool>& picked,
    const std::vector<int>& unpicked_parents) const {
  const int n = static_cast<int>(picked.size());
  std::vector<bool> valid(n);
  for (int j = 0; j < n; ++j) {
    valid[j] = !picked[j] && (config_.masking == MaskingMode::kVisitedOnly ||
                              unpicked_parents[j] == 0);
  }
  return valid;
}

std::vector<graph::NodeId> PtrNetAgent::DecodeImpl(const graph::Dag& dag,
                                                   std::mt19937_64* rng) const {
  const graph::TopoInfo topo = graph::AnalyzeTopology(dag);
  const int n = dag.NodeCount();
  const std::vector<int> pos = graph::OrderPositions(topo.order, n);

  // Input queue q follows the ASAP topological order (§III-A).
  const nn::Tensor emb = EmbedGraph(dag, config_.embedding);
  const nn::Tensor x_all = nn::AddBroadcastCol(
      nn::MatMul(store_.Value("input.W"), emb), store_.Value("input.b"));

  // Encoder sweep.
  nn::LstmCell::State enc = encoder_.InitialState();
  std::vector<nn::Tensor> contexts;
  contexts.reserve(n);
  for (int j = 0; j < n; ++j) {
    const graph::NodeId v = topo.order[j];
    enc = encoder_.Step(nn::SliceCols(x_all, v, v + 1), enc);
    contexts.push_back(enc.h);
  }
  const nn::Tensor C = nn::ConcatCols(contexts);
  const nn::PointerAttention::CachedRefs refs = attention_.Precompute(C);

  // Decoder: position-indexed bookkeeping.
  std::vector<bool> picked(n, false);
  std::vector<int> unpicked_parents(n, 0);
  for (int j = 0; j < n; ++j) {
    unpicked_parents[j] =
        static_cast<int>(dag.Parents(topo.order[j]).size());
  }

  nn::LstmCell::State dec{enc.h, enc.c};
  nn::Tensor d_input = store_.Value("decoder.d0");
  std::vector<graph::NodeId> sequence;
  sequence.reserve(n);
  for (int t = 0; t < n; ++t) {
    dec = decoder_.Step(d_input, dec);
    const std::vector<bool> valid = StepMask(picked, unpicked_parents);
    const nn::Tensor logits = attention_.PointerLogits(C, refs, dec.h, valid);
    const nn::Tensor probs = nn::MaskedSoftmax(logits, valid);
    const int j = rng == nullptr ? ArgmaxIndex(probs) : SampleIndex(probs, *rng);
    const graph::NodeId v = topo.order[j];
    picked[j] = true;
    for (const graph::NodeId c : dag.Children(v)) {
      --unpicked_parents[pos[c]];
    }
    sequence.push_back(v);
    d_input = nn::SliceCols(x_all, v, v + 1);
  }
  return sequence;
}

std::vector<graph::NodeId> PtrNetAgent::DecodeGreedy(
    const graph::Dag& dag) const {
  return DecodeImpl(dag, nullptr);
}

std::vector<graph::NodeId> PtrNetAgent::DecodeSampled(
    const graph::Dag& dag, std::mt19937_64& rng) const {
  return DecodeImpl(dag, &rng);
}

PtrNetAgent::SampleResult PtrNetAgent::SampleWithTape(const graph::Dag& dag,
                                                      nn::Tape& tape,
                                                      std::mt19937_64& rng) {
  const graph::TopoInfo topo = graph::AnalyzeTopology(dag);
  const int n = dag.NodeCount();
  const std::vector<int> pos = graph::OrderPositions(topo.order, n);

  const nn::Ref w_in = tape.Param(store_.Value("input.W"),
                                  &store_.Grad("input.W"));
  const nn::Ref b_in = tape.Param(store_.Value("input.b"),
                                  &store_.Grad("input.b"));
  const nn::Ref emb = tape.Constant(EmbedGraph(dag, config_.embedding));
  const nn::Ref x_all =
      tape.AddBroadcastCol(tape.MatMul(w_in, emb), b_in);

  nn::LstmCell::TapeState enc = encoder_.InitialState(tape);
  std::vector<nn::Ref> contexts;
  contexts.reserve(n);
  for (int j = 0; j < n; ++j) {
    const graph::NodeId v = topo.order[j];
    enc = encoder_.Step(tape, tape.SliceCols(x_all, v, v + 1), enc);
    contexts.push_back(enc.h);
  }
  const nn::Ref C = tape.ConcatCols(contexts);
  nn::PointerAttention::TapeRefs refs = attention_.Precompute(tape, C);

  std::vector<bool> picked(n, false);
  std::vector<int> unpicked_parents(n, 0);
  for (int j = 0; j < n; ++j) {
    unpicked_parents[j] = static_cast<int>(dag.Parents(topo.order[j]).size());
  }

  nn::LstmCell::TapeState dec{enc.h, enc.c};
  nn::Ref d_input = tape.Param(store_.Value("decoder.d0"),
                               &store_.Grad("decoder.d0"));
  SampleResult result;
  result.sequence.reserve(n);
  nn::Ref log_prob_sum = -1;
  for (int t = 0; t < n; ++t) {
    dec = decoder_.Step(tape, d_input, dec);
    const std::vector<bool> valid = StepMask(picked, unpicked_parents);
    const nn::Ref logits = attention_.PointerLogits(tape, refs, dec.h, valid);
    const nn::Tensor probs = nn::MaskedSoftmax(tape.Value(logits), valid);
    const int j = SampleIndex(probs, rng);
    const nn::Ref logp = tape.PickLogSoftmax(logits, valid, j);
    log_prob_sum = (log_prob_sum < 0) ? logp : tape.Add(log_prob_sum, logp);

    const graph::NodeId v = topo.order[j];
    picked[j] = true;
    for (const graph::NodeId c : dag.Children(v)) {
      --unpicked_parents[pos[c]];
    }
    result.sequence.push_back(v);
    d_input = tape.SliceCols(x_all, v, v + 1);
  }
  result.log_prob_sum = log_prob_sum;
  return result;
}

}  // namespace respect::rl
