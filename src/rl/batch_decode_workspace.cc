#include "rl/batch_decode_workspace.h"

#include "rl/embedding.h"

namespace respect::rl {

void BatchDecodeWorkspace::Reserve(int hidden_dim, int nodes, int batch) {
  const int d = hidden_dim;
  const int n = nodes;
  const int b = batch;
  const int total = n * b;
  emb_one.Resize(kFeatureDim, n);
  emb.Resize(kFeatureDim, total);
  x_all.Resize(d, total);
  zx_enc.Resize(4 * d, total);
  zx_dec.Resize(4 * d, total);
  zx_d0.Resize(4 * d, 1);
  contexts.Resize(d, total);
  refs.glimpse_ref.Resize(d, total);
  refs.pointer_ref.Resize(d, total);
  attn.Reserve(d, n, b);
  state.h.Resize(d, b);
  state.c.Resize(d, b);
  gates.Resize(4 * d, b);
  logits.Resize(1, total);
  probs.Resize(1, total);
  valid.resize(total);
  picked.resize(total);
  unpicked_parents.resize(total);
  zx_cols.resize(b);
  // Outer vectors only grow (shrinking would free the inner buffers and
  // break the zero-allocation steady state).
  if (static_cast<int>(topos.size()) < b) topos.resize(b);
  if (static_cast<int>(pos.size()) < b) pos.resize(b);
  if (static_cast<int>(sequences.size()) < b) sequences.resize(b);
  for (int g = 0; g < b; ++g) sequences[g].reserve(n);
}

}  // namespace respect::rl
