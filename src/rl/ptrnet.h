// The LSTM-PtrNet agent (Fig. 1b / Algorithm 1 of the paper).
//
// Encoder LSTM digests the embedded node queue q into a context matrix C and
// latent states enc_i; the final encoder state initializes the decoder
// LSTM, whose hidden state queries glimpse+pointer attention each step to
// emit a probability distribution over unpicked nodes.  Picked nodes' logits
// are masked to -inf.  The first decoder input dec_0 is a trainable
// parameter (as in the paper).
//
// Two decoding paths:
//  * greedy/sampled inference without gradients (works on graphs of any
//    size — the generalizability claim);
//  * tape-recorded sampling for REINFORCE training, returning the summed
//    log-probability node of the sampled sequence.
#pragma once

#include <cstdint>
#include <optional>
#include <random>
#include <span>
#include <string>
#include <vector>

#include "core/cancel.h"
#include "graph/dag.h"
#include "nn/attention.h"
#include "nn/lstm.h"
#include "nn/params.h"
#include "nn/tape.h"
#include "rl/batch_decode_workspace.h"
#include "rl/decode_workspace.h"
#include "rl/embedding.h"

namespace respect::rl {

/// Which nodes the decoder may point at.
enum class MaskingMode {
  /// Paper behaviour: only already-picked nodes are masked; dependency
  /// violations are repaired post-inference.
  kVisitedOnly,
  /// Stronger variant (ablation): only dependency-ready nodes are valid, so
  /// emitted sequences are topological by construction.
  kReadySet,
};

struct PtrNetConfig {
  int hidden_dim = 64;
  EmbeddingConfig embedding;

  /// Deployment default is kReadySet: with the compute budgets of this
  /// reproduction (minutes of CPU training vs the paper's 1M-graph GPU
  /// runs), constraining decoding to ready nodes preserves the paper's
  /// near-optimal quality; kVisitedOnly reproduces the paper's exact
  /// formulation and is exercised by the masking ablation benchmark.
  MaskingMode masking = MaskingMode::kReadySet;
  std::uint64_t init_seed = 0x7e5fec7;
};

class PtrNetAgent {
 public:
  explicit PtrNetAgent(const PtrNetConfig& config);

  /// Greedy decode: argmax node each step.  Deterministic.
  [[nodiscard]] std::vector<graph::NodeId> DecodeGreedy(
      const graph::Dag& dag) const;

  /// Stochastic decode without gradients (used for rollout evaluation).
  [[nodiscard]] std::vector<graph::NodeId> DecodeSampled(
      const graph::Dag& dag, std::mt19937_64& rng) const;

  // Workspace overloads — the serving hot path.  All decode buffers live in
  // `ws` (one per thread; see decode_workspace.h), so a steady-state call
  // performs zero heap allocations.  The returned reference aliases
  // `ws.sequence` and is valid until the next decode on the same workspace.
  /// `cancel` (optional) is polled once per decode step; a fired token
  /// unwinds with core::CancelledError before the step's recurrence runs.
  [[nodiscard]] const std::vector<graph::NodeId>& DecodeGreedy(
      const graph::Dag& dag, DecodeWorkspace& ws,
      const core::CancelToken& cancel = {}) const;
  [[nodiscard]] const std::vector<graph::NodeId>& DecodeSampled(
      const graph::Dag& dag, std::mt19937_64& rng, DecodeWorkspace& ws) const;

  /// Batched greedy decode: lock-steps every graph in `dags` — all of
  /// which must have the SAME node count (std::invalid_argument otherwise;
  /// group by size first, see RlEngine::ScheduleBatch) — so the per-step
  /// recurrences run as one GEMM across the batch.  B = 1 degenerates to a
  /// (slightly wider-buffered) single decode.
  ///
  /// On the scalar path the result is bit-identical to B independent
  /// DecodeGreedy calls: every batched kernel replicates the single-graph
  /// per-element accumulation order (see StepBatchInto /
  /// PointerLogitsBatchInto).  With nn::simd enabled, sequences may differ
  /// where a decision was numerically marginal (tolerance contract in
  /// tests/batch_decode_test.cc).
  ///
  /// Returns a reference to ws.sequences; entries [0, dags.size()) hold
  /// this call's results (later entries may be stale from a larger batch)
  /// and stay valid until the next decode on the same workspace.
  [[nodiscard]] const std::vector<std::vector<graph::NodeId>>&
  DecodeGreedyBatch(std::span<const graph::Dag* const> dags,
                    BatchDecodeWorkspace& ws) const;

  /// Tape-recorded stochastic decode for training.
  struct SampleResult {
    std::vector<graph::NodeId> sequence;
    nn::Ref log_prob_sum = -1;  // scalar (1,1) node on the tape
  };
  [[nodiscard]] SampleResult SampleWithTape(const graph::Dag& dag,
                                            nn::Tape& tape,
                                            std::mt19937_64& rng);

  [[nodiscard]] nn::ParamStore& Params() { return store_; }
  [[nodiscard]] const nn::ParamStore& Params() const { return store_; }
  [[nodiscard]] const PtrNetConfig& Config() const { return config_; }

  void Save(const std::string& path) const { store_.Save(path); }
  void Load(const std::string& path) { store_.Load(path); }

 private:
  /// Shared fused inference decode; `rng` null selects greedy argmax.
  /// Returns a reference to ws.sequence.
  [[nodiscard]] const std::vector<graph::NodeId>& DecodeImpl(
      const graph::Dag& dag, std::mt19937_64* rng, DecodeWorkspace& ws,
      const core::CancelToken& cancel = {}) const;

  /// Valid-node mask at one decode step (position-indexed), written into
  /// ws.valid.
  void StepMaskInto(DecodeWorkspace& ws) const;

  PtrNetConfig config_;
  nn::ParamStore store_;
  std::mt19937_64 init_rng_;
  nn::LstmCell encoder_;
  nn::LstmCell decoder_;
  nn::PointerAttention attention_;
};

}  // namespace respect::rl
