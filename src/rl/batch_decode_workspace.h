// BatchDecodeWorkspace — every buffer a batched PtrNet decode of B
// same-node-count graphs needs, owned in one place and reused across calls.
//
// The batched decode path (PtrNetAgent::DecodeGreedyBatch) lock-steps B
// graphs through the encoder and decoder, packing their per-graph matrices
// side by side — contexts and logits are (d, n·B) / (1, n·B) with column
// g·n+j belonging to graph g, recurrent state is (d, B) — so every
// per-step Wh·h recurrence is one (4d, d)×(d, B) GEMM instead of B GEMVs.
//
// Ownership / threading rules are the single-graph DecodeWorkspace's:
//  * NOT thread-safe; one workspace belongs to one thread at a time
//    (RlEngine keeps one per pool thread via a thread_local).
//  * Grow-only: buffers expand to the largest (hidden_dim, nodes, batch)
//    seen and never shrink, so steady-state decodes allocate nothing
//    (tests/batch_decode_test.cc guards this).  The vector-of-vector
//    members (per-graph topologies, positions, result sequences) only ever
//    grow in outer size — shrinking would free the inner buffers.
//  * The same workspace may serve agents of different hidden sizes and any
//    (nodes, batch) combination — Reserve() re-shapes on entry.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/dag.h"
#include "graph/topology.h"
#include "nn/attention.h"
#include "nn/lstm.h"
#include "nn/tensor.h"

namespace respect::rl {

/// Upper bound on the lock-stepped batch width.  Beyond this the GEMM
/// inner loops stop fitting the per-core cache comfortably and scheduling
/// granularity suffers; callers (RlEngine) chunk larger groups into
/// balanced pieces of at most this size.
inline constexpr int kMaxDecodeBatch = 32;

struct BatchDecodeWorkspace {
  /// Re-shapes every buffer for a batched decode of `batch` graphs of
  /// `nodes` nodes each at hidden size `hidden_dim`.  Grow-only storage:
  /// steady-state calls never allocate.
  void Reserve(int hidden_dim, int nodes, int batch);

  // Per-graph analysis (outer vectors grow-only; entry g serves graph g).
  graph::TopoScratch topo_scratch;
  std::vector<graph::TopoInfo> topos;
  std::vector<std::vector<int>> pos;  // inverse of topos[g].order

  // Encoder inputs, packed (column g·n+v = graph g, node v).
  nn::Tensor emb_one;  // (kFeatureDim, n) — one graph's embedding staging
  nn::Tensor emb;      // (kFeatureDim, n·B)
  nn::Tensor x_all;    // (d, n·B)
  nn::Tensor zx_enc;   // (4d, n·B) — encoder Wx · x_all
  nn::Tensor zx_dec;   // (4d, n·B) — decoder Wx · x_all
  nn::Tensor zx_d0;    // (4d, 1) — decoder Wx · d0, shared by every graph

  // Encoder outputs / attention state, packed (column g·n+j = graph g's
  // position-j context).
  nn::Tensor contexts;  // (d, n·B)
  nn::PointerAttention::CachedRefs refs;
  nn::PointerAttention::BatchScratch attn;

  // Lock-stepped recurrent state and per-step scratch.
  nn::LstmCell::BatchState state;  // h, c (d, B)
  nn::Tensor gates;                // (4d, B)
  nn::Tensor logits;               // (1, n·B)
  nn::Tensor probs;                // (1, n·B)

  // Decoder bookkeeping, packed position-indexed (entry g·n+j = graph g,
  // position j of topos[g].order).
  std::vector<std::uint8_t> valid;
  std::vector<std::uint8_t> picked;
  std::vector<int> unpicked_parents;

  // Per-graph zx column selectors for the lock-stepped LSTM steps.
  std::vector<int> zx_cols;

  // Decode results: sequences[g] is graph g's order.  Only the first B
  // entries are meaningful after a batch-B decode; later entries may hold
  // stale data from a previous, larger batch (grow-only rule).
  std::vector<std::vector<graph::NodeId>> sequences;
};

}  // namespace respect::rl
