// DecodeWorkspace — every buffer one PtrNet inference decode needs, owned in
// one place and reused across decode steps AND across calls.
//
// The fused decode path (PtrNetAgent::DecodeGreedy/DecodeSampled workspace
// overloads) writes exclusively into these buffers through the nn `*Into`
// kernels, so a decode on a workspace that has already seen a graph of the
// same (or larger) size performs ZERO heap allocations — the property the
// serving hot path relies on and tests/decode_parity_test.cc guards.
//
// Ownership / threading rules:
//  * A workspace is NOT thread-safe; it belongs to exactly one thread at a
//    time.  Serving code keeps one workspace per pool thread (RlEngine uses
//    a thread_local), so concurrent decodes never share buffers.
//  * Buffers grow to the largest (hidden_dim, nodes) seen and never shrink:
//    memory is bounded by the biggest graph the owning thread decoded.
//  * The same workspace may serve agents of different hidden sizes and
//    graphs of any size — Reserve() re-shapes on entry to every decode.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/dag.h"
#include "graph/topology.h"
#include "nn/attention.h"
#include "nn/lstm.h"
#include "nn/tensor.h"

namespace respect::rl {

struct DecodeWorkspace {
  /// Re-shapes every buffer for a decode of `nodes` nodes at hidden size
  /// `hidden_dim`.  Grow-only storage: steady-state calls never allocate.
  void Reserve(int hidden_dim, int nodes);

  // Graph analysis.
  graph::TopoScratch topo_scratch;
  graph::TopoInfo topo;
  std::vector<int> pos;  // inverse of topo.order

  // Encoder inputs: embedding, projected inputs, and the hoisted per-LSTM
  // input projections (Wx · x_all as one GEMM instead of a GEMV per step).
  nn::Tensor emb;     // (kFeatureDim, n)
  nn::Tensor x_all;   // (d, n)
  nn::Tensor zx_enc;  // (4d, n) — encoder Wx · x_all
  nn::Tensor zx_dec;  // (4d, n) — decoder Wx · x_all
  nn::Tensor zx_d0;   // (4d, 1) — decoder Wx · d0 (trainable first input)

  // Encoder outputs / attention state.
  nn::Tensor contexts;  // C (d, n)
  nn::PointerAttention::CachedRefs refs;
  nn::PointerAttention::Scratch attn;

  // Recurrent state and per-step scratch.
  nn::LstmCell::State state;  // h, c (d, 1); encoder state, then decoder
  nn::Tensor gates;           // (4d, 1)
  nn::Tensor logits;          // (1, n)
  nn::Tensor probs;           // (1, n)

  // Decoder bookkeeping (position-indexed over topo.order).
  std::vector<std::uint8_t> valid;
  std::vector<std::uint8_t> picked;
  std::vector<int> unpicked_parents;
  std::vector<graph::NodeId> sequence;  // the decode result
};

}  // namespace respect::rl
