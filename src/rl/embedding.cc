#include "rl/embedding.h"

#include <algorithm>

#include "graph/topology.h"

namespace respect::rl {

nn::Tensor EmbedGraph(const graph::Dag& dag, const EmbeddingConfig& config) {
  const graph::TopoInfo topo = graph::AnalyzeTopology(dag);
  nn::Tensor emb;
  EmbedGraphInto(dag, config, topo, emb);
  return emb;
}

void EmbedGraphInto(const graph::Dag& dag, const EmbeddingConfig& config,
                    const graph::TopoInfo& topo, nn::Tensor& out) {
  const int n = dag.NodeCount();

  std::int64_t max_param = 1;
  std::int64_t max_out = 1;
  for (graph::NodeId v = 0; v < n; ++v) {
    max_param = std::max(max_param, dag.Attr(v).param_bytes);
    max_out = std::max(max_out, dag.Attr(v).output_bytes);
  }
  const float depth = static_cast<float>(std::max(topo.depth, 1));

  const auto id_hash = [](const graph::OpAttr& attr) {
    return static_cast<float>(graph::HashOperatorName(attr.name) % 4096) /
           4096.0f;
  };

  out.Resize(kFeatureDim, n);
  for (graph::NodeId v = 0; v < n; ++v) {
    const auto parents = dag.Parents(v);
    float max_parent_level = 0.0f;
    float mean_parent_level = 0.0f;
    float mean_parent_id = -1.0f;  // paper: source parents' IDs are -1
    if (!parents.empty()) {
      float sum_level = 0.0f;
      float sum_id = 0.0f;
      float max_level = 0.0f;
      for (const graph::NodeId p : parents) {
        const float lvl = static_cast<float>(topo.asap_level[p]);
        sum_level += lvl;
        max_level = std::max(max_level, lvl);
        sum_id += id_hash(dag.Attr(p));
      }
      max_parent_level = max_level / depth;
      mean_parent_level = sum_level / static_cast<float>(parents.size()) / depth;
      mean_parent_id = sum_id / static_cast<float>(parents.size());
    }

    int row = 0;
    // Absolute + relative coordinates.
    out.At(row++, v) = config.include_topology
                           ? static_cast<float>(topo.asap_level[v]) / depth
                           : 0.0f;
    out.At(row++, v) = config.include_topology ? max_parent_level : 0.0f;
    out.At(row++, v) = config.include_topology ? mean_parent_level : 0.0f;
    // IDs.
    out.At(row++, v) = config.include_ids ? id_hash(dag.Attr(v)) : 0.0f;
    out.At(row++, v) = config.include_ids ? mean_parent_id : 0.0f;
    // Degree (part of the dependency context).
    out.At(row++, v) = config.include_topology
                           ? static_cast<float>(parents.size()) / 6.0f
                           : 0.0f;
    // Memory.
    out.At(row++, v) =
        config.include_memory
            ? static_cast<float>(dag.Attr(v).param_bytes) /
                  static_cast<float>(max_param)
            : 0.0f;
    out.At(row++, v) =
        config.include_memory
            ? static_cast<float>(dag.Attr(v).output_bytes) /
                  static_cast<float>(max_out)
            : 0.0f;
  }
}

}  // namespace respect::rl
