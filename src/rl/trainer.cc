#include "rl/trainer.h"

#include <random>

#include "graph/sampler.h"
#include "nn/tape.h"

namespace respect::rl {

TrainStats Train(PtrNetAgent& agent, const TrainConfig& config) {
  std::mt19937_64 rng(config.seed);
  nn::Adam adam(config.adam);

  // Rollout baseline: frozen copy of the best-so-far policy.
  PtrNetAgent baseline(agent.Config());
  baseline.Params() = agent.Params();
  double baseline_best = -1.0;
  DecodeWorkspace rollout_ws;  // reused across every baseline rollout

  TrainStats stats;
  stats.mean_reward.reserve(config.iterations);

  for (int iter = 0; iter < config.iterations; ++iter) {
    double reward_sum = 0.0;

    for (int b = 0; b < config.batch_size; ++b) {
      const graph::Dag dag =
          graph::SampleTrainingDag(config.graph_nodes, rng);
      const ImitationTarget target =
          ComputeTarget(dag, config.num_stages, config.target_max_expansions);

      nn::Tape tape;
      const PtrNetAgent::SampleResult sample =
          agent.SampleWithTape(dag, tape, rng);
      const double reward = ComputeReward(dag, target, sample.sequence,
                                          config.num_stages,
                                          config.reward_form);
      reward_sum += reward;

      double baseline_reward = 0.0;
      if (config.use_rollout_baseline) {
        const std::vector<graph::NodeId>& rollout =
            baseline.DecodeGreedy(dag, rollout_ws);
        baseline_reward = ComputeReward(dag, target, rollout,
                                        config.num_stages, config.reward_form);
      }

      // Minimizing E[(1-R) log p] ≡ maximizing E[R log p]; the advantage
      // seeds the backward pass, scaled by 1/batch for a mean gradient.
      const double advantage = (1.0 - reward) - (1.0 - baseline_reward);
      tape.Backward(sample.log_prob_sum,
                    static_cast<float>(advantage / config.batch_size));
    }

    adam.Step(agent.Params());

    const double mean_reward = reward_sum / config.batch_size;
    stats.mean_reward.push_back(mean_reward);
    if (mean_reward > baseline_best) {
      baseline_best = mean_reward;
      baseline.Params() = agent.Params();
      ++stats.baseline_refreshes;
    }
    stats.best_mean_reward = baseline_best;
    if (config.on_iteration) config.on_iteration(iter, mean_reward);
  }
  return stats;
}

}  // namespace respect::rl
