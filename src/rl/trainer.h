// REINFORCE trainer with rollout baseline (Eq. 5 / Eq. 6 of the paper).
//
// Model-free policy gradient on synthetic graphs: each iteration samples a
// batch of random DAGs (the paper's curriculum: |V| = 30, deg(V) ∈ {2..6}),
// computes the exact imitation target per graph, samples a sequence from the
// current policy with the autodiff tape, and ascends
//     ∇J = E[ (R(π|G) - b(G)) ∇ log p(π|G) ]
// where b(G) is the greedy rollout reward of the best policy snapshot seen
// so far (the rollout baseline of Kool et al. the paper adopts).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "nn/adam.h"
#include "rl/ptrnet.h"
#include "rl/reward.h"

namespace respect::rl {

struct TrainConfig {
  int num_stages = 4;

  /// Optimizer steps and per-step batch size.  The paper trains 300 epochs
  /// on 1M graphs with batch 128 and lr 1e-4; the defaults here are scaled
  /// to minutes of CPU while preserving the algorithm.
  int iterations = 250;
  int batch_size = 24;

  /// Synthetic-graph size (paper: 30).  Sampled degree follows the paper's
  /// {2..6} curriculum.
  int graph_nodes = 30;

  RewardForm reward_form = RewardForm::kStageCosine;
  bool use_rollout_baseline = true;

  nn::AdamConfig adam{.learning_rate = 1e-3f};
  std::uint64_t seed = 0xda5c0de;

  /// Exact-solver budget per imitation target.
  std::int64_t target_max_expansions = 50'000;

  /// Optional per-iteration observer (iteration, mean batch reward).
  std::function<void(int, double)> on_iteration;
};

struct TrainStats {
  std::vector<double> mean_reward;  // one entry per iteration
  double best_mean_reward = 0.0;
  int baseline_refreshes = 0;
};

/// Trains `agent` in place.
TrainStats Train(PtrNetAgent& agent, const TrainConfig& config);

}  // namespace respect::rl
