#include "rl/reference_decode.h"

#include <cmath>
#include <stdexcept>

#include "graph/topology.h"
#include "nn/params.h"
#include "nn/tensor.h"
#include "rl/embedding.h"

namespace respect::rl {
namespace {

// Verbatim copies of the pre-optimization helpers (ptrnet.cc / lstm.cc /
// attention.cc as of the allocate-per-op implementation).  Do not "clean
// up": bit-identity with the fused path is the whole point.

int SampleIndex(const nn::Tensor& probs, std::mt19937_64& rng) {
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  double r = unit(rng);
  int last_valid = -1;
  for (int j = 0; j < probs.Cols(); ++j) {
    const double p = probs.At(0, j);
    if (p <= 0.0) continue;
    last_valid = j;
    r -= p;
    if (r <= 0.0) return j;
  }
  if (last_valid < 0) {
    throw std::logic_error("SampleIndex: degenerate distribution");
  }
  return last_valid;
}

int ArgmaxIndex(const nn::Tensor& probs) {
  int best = -1;
  float best_p = -1.0f;
  for (int j = 0; j < probs.Cols(); ++j) {
    if (probs.At(0, j) > best_p) {
      best_p = probs.At(0, j);
      best = j;
    }
  }
  return best;
}

struct LstmState {
  nn::Tensor h;
  nn::Tensor c;
};

/// The original LstmCell::Step, driven off the ParamStore by name.
LstmState LstmStep(const nn::ParamStore& store, const std::string& prefix,
                   const nn::Tensor& x, const LstmState& prev, int d) {
  const nn::Tensor z =
      nn::Add(nn::Add(nn::MatMul(store.Value(prefix + ".Wx"), x),
                      nn::MatMul(store.Value(prefix + ".Wh"), prev.h)),
              store.Value(prefix + ".b"));
  const nn::Tensor i = nn::Sigmoid(nn::SliceRows(z, 0, d));
  const nn::Tensor f = nn::Sigmoid(nn::SliceRows(z, d, 2 * d));
  const nn::Tensor g = nn::Tanh(nn::SliceRows(z, 2 * d, 3 * d));
  const nn::Tensor o = nn::Sigmoid(nn::SliceRows(z, 3 * d, 4 * d));
  LstmState next;
  next.c = nn::Add(nn::Mul(f, prev.c), nn::Mul(i, g));
  next.h = nn::Mul(o, nn::Tanh(next.c));
  return next;
}

/// The original fused attention-score kernel (attention.cc).
void ScoreColumns(const nn::Tensor& ref, const nn::Tensor& q,
                  const nn::Tensor& v, nn::Tensor& scores) {
  const int d = ref.Rows();
  const int n = ref.Cols();
  for (int j = 0; j < n; ++j) scores.At(0, j) = 0.0f;
  for (int i = 0; i < d; ++i) {
    const float qi = q.At(i, 0);
    const float vi = v.At(i, 0);
    const float* row = ref.Data() + static_cast<std::int64_t>(i) * n;
    float* out = scores.Data();
    for (int j = 0; j < n; ++j) {
      out[j] += vi * std::tanh(row[j] + qi);
    }
  }
}

/// The original PointerAttention::PointerLogits inference path.
nn::Tensor PointerLogits(const nn::ParamStore& store,
                         const nn::Tensor& contexts,
                         const nn::Tensor& glimpse_ref,
                         const nn::Tensor& pointer_ref, const nn::Tensor& h,
                         const std::vector<bool>& valid, int d) {
  constexpr float kLogitClip = 10.0f;
  const int n = contexts.Cols();

  const nn::Tensor q_g = nn::Add(nn::MatMul(store.Value("attention.Wq_g"), h),
                                 store.Value("attention.b_g"));
  nn::Tensor scores_g(1, n);
  ScoreColumns(glimpse_ref, q_g, store.Value("attention.v_g"), scores_g);
  const nn::Tensor attn = nn::MaskedSoftmax(scores_g, valid);
  nn::Tensor glimpse(d, 1);
  for (int i = 0; i < d; ++i) {
    const float* row = contexts.Data() + static_cast<std::int64_t>(i) * n;
    float acc = 0.0f;
    for (int j = 0; j < n; ++j) acc += row[j] * attn.At(0, j);
    glimpse.At(i, 0) = acc;
  }

  const nn::Tensor q_p =
      nn::Add(nn::MatMul(store.Value("attention.Wq_p"), glimpse),
              store.Value("attention.b_p"));
  nn::Tensor u(1, n);
  ScoreColumns(pointer_ref, q_p, store.Value("attention.v_p"), u);
  for (int j = 0; j < n; ++j) {
    u.At(0, j) = kLogitClip * std::tanh(u.At(0, j));
  }
  return u;
}

std::vector<bool> StepMask(MaskingMode masking, const std::vector<bool>& picked,
                           const std::vector<int>& unpicked_parents) {
  const int n = static_cast<int>(picked.size());
  std::vector<bool> valid(n);
  for (int j = 0; j < n; ++j) {
    valid[j] = !picked[j] && (masking == MaskingMode::kVisitedOnly ||
                              unpicked_parents[j] == 0);
  }
  return valid;
}

/// The original PtrNetAgent::DecodeImpl.
std::vector<graph::NodeId> DecodeImpl(const PtrNetAgent& agent,
                                      const graph::Dag& dag,
                                      std::mt19937_64* rng) {
  const nn::ParamStore& store = agent.Params();
  const PtrNetConfig& config = agent.Config();
  const int d = config.hidden_dim;

  const graph::TopoInfo topo = graph::AnalyzeTopology(dag);
  const int n = dag.NodeCount();
  const std::vector<int> pos = graph::OrderPositions(topo.order, n);

  const nn::Tensor emb = EmbedGraph(dag, config.embedding);
  const nn::Tensor x_all = nn::AddBroadcastCol(
      nn::MatMul(store.Value("input.W"), emb), store.Value("input.b"));

  LstmState enc{nn::Tensor::Zeros(d, 1), nn::Tensor::Zeros(d, 1)};
  std::vector<nn::Tensor> contexts;
  contexts.reserve(n);
  for (int j = 0; j < n; ++j) {
    const graph::NodeId v = topo.order[j];
    enc = LstmStep(store, "encoder", nn::SliceCols(x_all, v, v + 1), enc, d);
    contexts.push_back(enc.h);
  }
  const nn::Tensor C = nn::ConcatCols(contexts);
  const nn::Tensor glimpse_ref = nn::MatMul(store.Value("attention.Wref_g"), C);
  const nn::Tensor pointer_ref = nn::MatMul(store.Value("attention.Wref_p"), C);

  std::vector<bool> picked(n, false);
  std::vector<int> unpicked_parents(n, 0);
  for (int j = 0; j < n; ++j) {
    unpicked_parents[j] = static_cast<int>(dag.Parents(topo.order[j]).size());
  }

  LstmState dec{enc.h, enc.c};
  nn::Tensor d_input = store.Value("decoder.d0");
  std::vector<graph::NodeId> sequence;
  sequence.reserve(n);
  for (int t = 0; t < n; ++t) {
    dec = LstmStep(store, "decoder", d_input, dec, d);
    const std::vector<bool> valid =
        StepMask(config.masking, picked, unpicked_parents);
    const nn::Tensor logits =
        PointerLogits(store, C, glimpse_ref, pointer_ref, dec.h, valid, d);
    const nn::Tensor probs = nn::MaskedSoftmax(logits, valid);
    const int j =
        rng == nullptr ? ArgmaxIndex(probs) : SampleIndex(probs, *rng);
    const graph::NodeId v = topo.order[j];
    picked[j] = true;
    for (const graph::NodeId c : dag.Children(v)) {
      --unpicked_parents[pos[c]];
    }
    sequence.push_back(v);
    d_input = nn::SliceCols(x_all, v, v + 1);
  }
  return sequence;
}

}  // namespace

std::vector<graph::NodeId> ReferenceDecodeGreedy(const PtrNetAgent& agent,
                                                 const graph::Dag& dag) {
  return DecodeImpl(agent, dag, nullptr);
}

std::vector<graph::NodeId> ReferenceDecodeSampled(const PtrNetAgent& agent,
                                                  const graph::Dag& dag,
                                                  std::mt19937_64& rng) {
  return DecodeImpl(agent, dag, &rng);
}

}  // namespace respect::rl
