// Frozen pre-optimization PtrNet decode — the allocate-per-op inference path
// exactly as it existed before the fused zero-allocation rewrite.
//
// Kept on purpose, not dead code: the optimized DecodeGreedy/DecodeSampled
// must produce BIT-IDENTICAL sequences to this implementation (guarded by
// tests/decode_parity_test.cc), and bench_micro reports the before/after
// decode throughput against it.  It re-derives every step from the agent's
// ParamStore through the allocating nn value ops, so any arithmetic drift in
// the fused kernels shows up as a sequence mismatch.
#pragma once

#include <random>
#include <vector>

#include "graph/dag.h"
#include "rl/ptrnet.h"

namespace respect::rl {

/// Greedy argmax decode via the pre-optimization path.
[[nodiscard]] std::vector<graph::NodeId> ReferenceDecodeGreedy(
    const PtrNetAgent& agent, const graph::Dag& dag);

/// Stochastic decode via the pre-optimization path; consumes `rng` exactly
/// like PtrNetAgent::DecodeSampled.
[[nodiscard]] std::vector<graph::NodeId> ReferenceDecodeSampled(
    const PtrNetAgent& agent, const graph::Dag& dag, std::mt19937_64& rng);

}  // namespace respect::rl
