// First-class device profiles: a named, fingerprintable description of the
// target pipeline hardware.
//
// The paper evaluates exactly one hardware point — identical Coral Edge TPUs
// chained over USB 3.0 — and that point used to live as default-constructed
// structs inside tpu/device.h.  A DeviceProfile makes the hardware explicit
// and heterogeneous: per-stage EdgeTpuModels (different cache sizes, MAC
// rates, dispatch overheads per pipeline position) plus the shared USB link
// model, with a canonical byte serialization and a 128-bit fingerprint so
// profiles can participate in content-addressed cache keys (same DAG on two
// fleets = two cache entries, never a wrong answer).
//
// This header deliberately depends only on graph/canonical_hash.h (no sched,
// no deploy), so every layer — sched constraints, engines, the serving
// front end — can see the profile without an include cycle.  tpu/device.h
// re-exports the models by including this file.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "graph/canonical_hash.h"

namespace respect::tpu {

struct UsbLinkModel {
  /// Effective USB 3.0 throughput (~320 MiB/s).
  double bytes_per_us = 335.5;

  /// Per-message round-trip overhead.
  double latency_us = 60.0;

  [[nodiscard]] double TransferUs(std::int64_t bytes) const {
    return bytes <= 0 ? 0.0
                      : latency_us + static_cast<double>(bytes) / bytes_per_us;
  }

  friend bool operator==(const UsbLinkModel&, const UsbLinkModel&) = default;
};

struct EdgeTpuModel {
  /// On-chip parameter SRAM (8 MiB on Coral).
  std::int64_t cache_bytes = 8ll * 1024 * 1024;

  /// Sustained compute rate: 4 TOPS int8 ≈ 2e12 MAC/s = 2e6 MAC/us, derated
  /// to ~55% utilization for real conv workloads.
  double macs_per_us = 1.1e6;

  /// Host dispatch overhead per segment invocation.
  double dispatch_us = 25.0;

  friend bool operator==(const EdgeTpuModel&, const EdgeTpuModel&) = default;
};

/// A named description of the pipeline hardware a schedule will run on.
///
/// `stages` is a per-stage device pattern, not a fixed stage count: stage k
/// uses stages[min(k, stages.size()-1)], so {fast, coral} means "stage 0 is
/// the fast device, every later stage a stock Coral" regardless of how many
/// stages a request asks for.  An empty vector means every stage is a stock
/// Coral (the paper's testbed) — that is the *default profile*, and it is
/// the only profile that contributes nothing to cache keys, which keeps
/// pre-profile spill files readable and warm-startable.
struct DeviceProfile {
  std::string name = "coral";
  std::vector<EdgeTpuModel> stages;
  UsbLinkModel link;

  /// Device model for pipeline stage `stage` (clamps to the last entry).
  [[nodiscard]] const EdgeTpuModel& DeviceAt(int stage) const;

  /// True when every stage uses the same device model (the link may still
  /// differ from stock).  Heterogeneity is what makes schedule *balance*
  /// profile-dependent; engines use this to pick the device-aware objective.
  [[nodiscard]] bool IsUniform() const;

  /// True when this profile is hardware-identical to DefaultProfile()
  /// (names are ignored — fingerprints compare the hardware, not the label).
  [[nodiscard]] bool IsDefault() const;

  /// Canonical byte serialization of the *hardware* (name excluded, the
  /// stage pattern collapsed to its shortest equivalent form): two profiles
  /// that behave identically at every stage count serialize identically.
  [[nodiscard]] std::string Serialize() const;

  /// 128-bit digest of Serialize() — what cache keys and spill envelopes
  /// record.  Stable across runs and platforms.
  [[nodiscard]] graph::CanonicalHash Fingerprint() const;

  friend bool operator==(const DeviceProfile&, const DeviceProfile&) = default;
};

/// The paper's testbed: identical stock Corals on USB 3.0.  Requests that
/// name no profile resolve to this, and it folds nothing into cache keys.
[[nodiscard]] const DeviceProfile& DefaultProfile();

/// Looks up a named preset.  The empty string is an alias for the default
/// profile (a request with no profile field).  Unknown names are nullopt.
///
/// Built-in presets:
///   coral           — the default profile (stock Corals, USB 3.0)
///   coral-x2fast    — stage 0 is a 2x-MAC-rate, 16 MiB-cache device;
///                     later stages stock Corals
///   constrained-4mb — every stage a 4 MiB-cache Coral (streaming-bound)
///   coral-usb2      — stock Corals behind a USB 2.0 link
[[nodiscard]] std::optional<DeviceProfile> FindProfile(std::string_view name);

/// Names of all built-in presets, in registry order.
[[nodiscard]] std::vector<std::string_view> ProfileNames();

}  // namespace respect::tpu
