#include "tpu/device.h"

namespace respect::tpu {
namespace {

StageCost CostSegment(const deploy::PipelinePackage& package, std::size_t k,
                      const EdgeTpuModel& device, const UsbLinkModel& link) {
  const deploy::Segment& seg = package.segments[k];
  StageCost cost;

  cost.compute_us =
      static_cast<double>(seg.macs) / device.macs_per_us + device.dispatch_us;

  const std::int64_t overflow = seg.param_bytes - device.cache_bytes;
  if (overflow > 0) {
    // Off-cache weights stream from host memory on every inference.
    cost.param_stream_us = link.TransferUs(overflow);
  }

  std::int64_t in_bytes = 0;
  for (const deploy::BoundaryTensor& t : seg.inputs) in_bytes += t.bytes;
  if (k == 0) in_bytes += package.host_input_bytes;
  cost.input_xfer_us = link.TransferUs(in_bytes);

  std::int64_t out_bytes = 0;
  for (const deploy::BoundaryTensor& t : seg.outputs) out_bytes += t.bytes;
  if (k + 1 == package.segments.size()) {
    out_bytes += package.host_output_bytes;
  }
  cost.output_xfer_us = link.TransferUs(out_bytes);
  return cost;
}

}  // namespace

std::vector<StageCost> ProfilePackage(const deploy::PipelinePackage& package,
                                      const EdgeTpuModel& device,
                                      const UsbLinkModel& link) {
  std::vector<StageCost> costs(package.segments.size());
  for (std::size_t k = 0; k < package.segments.size(); ++k) {
    costs[k] = CostSegment(package, k, device, link);
  }
  return costs;
}

std::vector<StageCost> ProfilePackage(const deploy::PipelinePackage& package,
                                      const DeviceProfile& profile) {
  std::vector<StageCost> costs(package.segments.size());
  for (std::size_t k = 0; k < package.segments.size(); ++k) {
    costs[k] = CostSegment(package, k, profile.DeviceAt(static_cast<int>(k)),
                           profile.link);
  }
  return costs;
}

}  // namespace respect::tpu
