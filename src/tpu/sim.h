// Discrete-event simulator of the pipelined Edge TPU system.
//
// Models the paper's testbed executing a stream of inferences: each device
// runs its segment, forwards boundary activations downstream over USB, and
// accepts the next inference as soon as it is free (software pipelining).
// The DES is the measurement instrument behind Fig. 4; an analytic
// steady-state recurrence (exact for linear pipelines) cross-checks it in
// tests.
#pragma once

#include <cstdint>
#include <vector>

#include "tpu/device.h"

namespace respect::tpu {

struct SimConfig {
  int num_inferences = 1000;
  EdgeTpuModel device;
  UsbLinkModel link;

  /// When set, SimResult.timeline records every (inference, stage) service
  /// interval — the input to obs::WriteSimChromeTrace.  Off by default: the
  /// timeline is O(inferences * stages) memory.
  bool record_timeline = false;
};

/// One simulated service interval: inference `inference` occupied stage
/// `stage` from start_us to finish_us (including its transfers).
struct SimTimelineEntry {
  int inference = 0;
  int stage = 0;
  double start_us = 0.0;
  double finish_us = 0.0;
};

struct SimResult {
  /// Wall-clock time until the last inference leaves the pipeline.
  double total_us = 0.0;

  /// total_us / num_inferences — the paper's per-inference runtime metric.
  double per_inference_us = 0.0;

  /// First inference end-to-end latency (pipeline fill).
  double first_latency_us = 0.0;

  /// Per-stage busy time (utilization diagnostics).
  std::vector<double> stage_busy_us;

  /// Index of the slowest stage.
  int bottleneck_stage = 0;

  std::int64_t events_processed = 0;

  /// Per-(inference, stage) service intervals; populated only when
  /// SimConfig::record_timeline was set.
  std::vector<SimTimelineEntry> timeline;
};

/// Runs the event-driven simulation on a homogeneous pipeline.
[[nodiscard]] SimResult SimulatePipeline(const deploy::PipelinePackage& package,
                                         const SimConfig& config = {});

/// Heterogeneous form: segment k executes on profile.DeviceAt(k) with all
/// transfers on profile.link.  With the default profile this matches the
/// SimConfig overload exactly.
[[nodiscard]] SimResult SimulatePipeline(const deploy::PipelinePackage& package,
                                         const DeviceProfile& profile,
                                         int num_inferences = 1000);

/// Closed-form pipeline recurrence:
///   t[i][k] = max(t[i][k-1], t[i-1][k]) + stage_us[k]
/// Exact for a linear pipeline with per-stage service times; used to verify
/// the DES and for quick estimates.
[[nodiscard]] double AnalyticPipelineUs(const std::vector<StageCost>& costs,
                                        int num_inferences);

}  // namespace respect::tpu
