#include "tpu/device_profile.h"

#include <algorithm>
#include <bit>

namespace respect::tpu {
namespace {

// Shortest stage pattern with identical per-stage behaviour: trailing
// entries equal to their predecessor are redundant under the clamping rule,
// and an empty pattern means a single stock device.
std::vector<EdgeTpuModel> CanonicalStages(
    const std::vector<EdgeTpuModel>& stages) {
  std::vector<EdgeTpuModel> out = stages;
  if (out.empty()) out.push_back(EdgeTpuModel{});
  while (out.size() > 1 && out[out.size() - 1] == out[out.size() - 2]) {
    out.pop_back();
  }
  return out;
}

void AppendU64(std::string& out, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((value >> (8 * i)) & 0xff));
  }
}

void AppendF64(std::string& out, double value) {
  AppendU64(out, std::bit_cast<std::uint64_t>(value));
}

const std::vector<DeviceProfile>& Presets() {
  static const std::vector<DeviceProfile> presets = [] {
    std::vector<DeviceProfile> list;

    list.push_back(DeviceProfile{});  // "coral"

    DeviceProfile x2fast;
    x2fast.name = "coral-x2fast";
    EdgeTpuModel fast;
    fast.cache_bytes = 16ll * 1024 * 1024;
    fast.macs_per_us = 2.2e6;
    fast.dispatch_us = 15.0;
    x2fast.stages = {fast, EdgeTpuModel{}};
    list.push_back(std::move(x2fast));

    DeviceProfile constrained;
    constrained.name = "constrained-4mb";
    EdgeTpuModel small;
    small.cache_bytes = 4ll * 1024 * 1024;
    constrained.stages = {small};
    list.push_back(std::move(constrained));

    DeviceProfile usb2;
    usb2.name = "coral-usb2";
    usb2.link.bytes_per_us = 40.0;  // ~38 MiB/s effective USB 2.0
    usb2.link.latency_us = 250.0;
    list.push_back(std::move(usb2));

    return list;
  }();
  return presets;
}

}  // namespace

const EdgeTpuModel& DeviceProfile::DeviceAt(int stage) const {
  static const EdgeTpuModel kStock{};
  if (stages.empty()) return kStock;
  const std::size_t index =
      stage < 0 ? 0
                : std::min(static_cast<std::size_t>(stage), stages.size() - 1);
  return stages[index];
}

bool DeviceProfile::IsUniform() const {
  return CanonicalStages(stages).size() == 1;
}

bool DeviceProfile::IsDefault() const {
  return Fingerprint() == DefaultProfile().Fingerprint();
}

std::string DeviceProfile::Serialize() const {
  const std::vector<EdgeTpuModel> canon = CanonicalStages(stages);
  std::string out = "respect-device-profile-v1";
  AppendU64(out, canon.size());
  for (const EdgeTpuModel& device : canon) {
    AppendU64(out, static_cast<std::uint64_t>(device.cache_bytes));
    AppendF64(out, device.macs_per_us);
    AppendF64(out, device.dispatch_us);
  }
  AppendF64(out, link.bytes_per_us);
  AppendF64(out, link.latency_us);
  return out;
}

graph::CanonicalHash DeviceProfile::Fingerprint() const {
  graph::CanonicalHasher hasher;
  hasher.Update(Serialize());
  return hasher.Finish();
}

const DeviceProfile& DefaultProfile() { return Presets().front(); }

std::optional<DeviceProfile> FindProfile(std::string_view name) {
  if (name.empty()) return DefaultProfile();
  for (const DeviceProfile& preset : Presets()) {
    if (preset.name == name) return preset;
  }
  return std::nullopt;
}

std::vector<std::string_view> ProfileNames() {
  std::vector<std::string_view> names;
  names.reserve(Presets().size());
  for (const DeviceProfile& preset : Presets()) names.push_back(preset.name);
  return names;
}

}  // namespace respect::tpu
