#include "tpu/sim.h"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace respect::tpu {
namespace {

/// One scheduled event: inference `inference` becomes ready to start on
/// stage `stage` at time `at_us` (its upstream data has arrived).
struct Event {
  double at_us = 0.0;
  int inference = 0;
  int stage = 0;

  friend bool operator>(const Event& a, const Event& b) {
    if (a.at_us != b.at_us) return a.at_us > b.at_us;
    if (a.inference != b.inference) return a.inference > b.inference;
    return a.stage > b.stage;
  }
};

/// The DES core, shared by the homogeneous and per-stage-profile entry
/// points: whatever produced `costs`, the event dynamics are identical.
SimResult RunSim(const std::vector<StageCost>& costs, int num_inferences,
                 bool record_timeline = false) {
  const int stages = static_cast<int>(costs.size());
  if (stages == 0 || num_inferences <= 0) {
    throw std::invalid_argument("SimulatePipeline: empty package or batch");
  }

  SimResult result;
  result.stage_busy_us.assign(stages, 0.0);

  // device_free_at[k]: when stage k's TPU can accept new work.
  std::vector<double> device_free_at(stages, 0.0);

  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue;
  for (int i = 0; i < num_inferences; ++i) {
    // Host feeds inference i as soon as it likes; admission is controlled by
    // stage 0 availability.
    queue.push(Event{0.0, i, 0});
  }

  double end_of_last = 0.0;
  double first_latency = 0.0;
  while (!queue.empty()) {
    const Event ev = queue.top();
    queue.pop();
    ++result.events_processed;

    const StageCost& cost = costs[ev.stage];
    // Service = wait for the device, then params/inputs/compute/outputs.
    const double start = std::max(ev.at_us, device_free_at[ev.stage]);
    const double finish = start + cost.TotalUs();
    device_free_at[ev.stage] = finish;
    result.stage_busy_us[ev.stage] += cost.TotalUs();
    if (record_timeline) {
      result.timeline.push_back(
          SimTimelineEntry{ev.inference, ev.stage, start, finish});
    }

    if (ev.stage + 1 < stages) {
      // Downstream sees the data once the output transfer completed, which
      // TotalUs already accounts for.
      queue.push(Event{finish, ev.inference, ev.stage + 1});
    } else {
      end_of_last = std::max(end_of_last, finish);
      if (ev.inference == 0) first_latency = finish;
    }
  }

  result.total_us = end_of_last;
  result.per_inference_us = end_of_last / num_inferences;
  result.first_latency_us = first_latency;
  result.bottleneck_stage = static_cast<int>(
      std::max_element(result.stage_busy_us.begin(),
                       result.stage_busy_us.end()) -
      result.stage_busy_us.begin());
  return result;
}

}  // namespace

SimResult SimulatePipeline(const deploy::PipelinePackage& package,
                           const SimConfig& config) {
  if (package.segments.empty() || config.num_inferences <= 0) {
    throw std::invalid_argument("SimulatePipeline: empty package or batch");
  }
  return RunSim(ProfilePackage(package, config.device, config.link),
                config.num_inferences, config.record_timeline);
}

SimResult SimulatePipeline(const deploy::PipelinePackage& package,
                           const DeviceProfile& profile, int num_inferences) {
  if (package.segments.empty() || num_inferences <= 0) {
    throw std::invalid_argument("SimulatePipeline: empty package or batch");
  }
  return RunSim(ProfilePackage(package, profile), num_inferences);
}

double AnalyticPipelineUs(const std::vector<StageCost>& costs,
                          int num_inferences) {
  if (costs.empty() || num_inferences <= 0) {
    throw std::invalid_argument("AnalyticPipelineUs: empty input");
  }
  const int stages = static_cast<int>(costs.size());
  std::vector<double> prev(stages, 0.0);  // completion times, inference i-1
  std::vector<double> cur(stages, 0.0);
  for (int i = 0; i < num_inferences; ++i) {
    for (int k = 0; k < stages; ++k) {
      const double upstream = k == 0 ? 0.0 : cur[k - 1];
      const double device_free = i == 0 ? 0.0 : prev[k];
      cur[k] = std::max(upstream, device_free) + costs[k].TotalUs();
    }
    prev = cur;
  }
  return prev[stages - 1];
}

}  // namespace respect::tpu
