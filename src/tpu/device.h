// Edge TPU device and USB interconnect cost model.
//
// Mirrors the physical testbed of the paper (Fig. 2): Coral Edge TPUs
// chained off a host over USB 3.0.  The performance-relevant behaviours,
// following Boroumand et al. [3] and the Coral documentation:
//  * on-chip SRAM caches model parameters; a segment whose weights fit
//    is "on-cache" and streams nothing per inference;
//  * parameters beyond the cache are re-fetched from the host on EVERY
//    inference over USB — the dominant penalty unbalanced schedules pay;
//  * activations crossing segments travel over USB with a fixed per-message
//    latency plus bandwidth cost;
//  * compute follows a systolic-array MACs/second rate.
//
// The device/link structs themselves live in tpu/device_profile.h (a
// dependency-free header every layer can include); this header adds the
// package-level cost profiling, which needs deploy::PipelinePackage.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "deploy/package.h"
#include "tpu/device_profile.h"

namespace respect::tpu {

/// Per-inference latency of one pipeline segment on one device.
struct StageCost {
  double compute_us = 0.0;
  double param_stream_us = 0.0;  // off-cache weight refetch
  double input_xfer_us = 0.0;    // activations in (incl. host input at k=0)
  double output_xfer_us = 0.0;   // activations out (incl. logits at k=n-1)

  /// Per-inference service time.  Parameter streaming is double-buffered
  /// against compute on the real device, so the two overlap; activation
  /// transfers serialize with both.
  [[nodiscard]] double TotalUs() const {
    return std::max(compute_us, param_stream_us) + input_xfer_us +
           output_xfer_us;
  }
  [[nodiscard]] bool OnCache() const { return param_stream_us == 0.0; }
};

/// Computes the steady-state per-inference cost of every segment of a
/// package on a homogeneous pipeline of the given device/link models.
[[nodiscard]] std::vector<StageCost> ProfilePackage(
    const deploy::PipelinePackage& package, const EdgeTpuModel& device = {},
    const UsbLinkModel& link = {});

/// Heterogeneous form: segment k is costed on profile.DeviceAt(k), all
/// transfers on profile.link.  With the default profile this matches the
/// homogeneous overload exactly.
[[nodiscard]] std::vector<StageCost> ProfilePackage(
    const deploy::PipelinePackage& package, const DeviceProfile& profile);

}  // namespace respect::tpu
