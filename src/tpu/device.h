// Edge TPU device and USB interconnect models.
//
// Mirrors the physical testbed of the paper (Fig. 2): Coral Edge TPUs
// chained off a host over USB 3.0.  The performance-relevant behaviours,
// following Boroumand et al. [3] and the Coral documentation:
//  * 8 MiB on-chip SRAM caches model parameters; a segment whose weights fit
//    is "on-cache" and streams nothing per inference;
//  * parameters beyond the cache are re-fetched from the host on EVERY
//    inference over USB — the dominant penalty unbalanced schedules pay;
//  * activations crossing segments travel over USB with a fixed per-message
//    latency plus bandwidth cost;
//  * compute follows a systolic-array MACs/second rate.
#pragma once

#include <algorithm>
#include <cstdint>

#include "deploy/package.h"

namespace respect::tpu {

struct UsbLinkModel {
  /// Effective USB 3.0 throughput (~320 MiB/s).
  double bytes_per_us = 335.5;

  /// Per-message round-trip overhead.
  double latency_us = 60.0;

  [[nodiscard]] double TransferUs(std::int64_t bytes) const {
    return bytes <= 0 ? 0.0
                      : latency_us + static_cast<double>(bytes) / bytes_per_us;
  }
};

struct EdgeTpuModel {
  /// On-chip parameter SRAM (8 MiB on Coral).
  std::int64_t cache_bytes = 8ll * 1024 * 1024;

  /// Sustained compute rate: 4 TOPS int8 ≈ 2e12 MAC/s = 2e6 MAC/us, derated
  /// to ~55% utilization for real conv workloads.
  double macs_per_us = 1.1e6;

  /// Host dispatch overhead per segment invocation.
  double dispatch_us = 25.0;
};

/// Per-inference latency of one pipeline segment on one device.
struct StageCost {
  double compute_us = 0.0;
  double param_stream_us = 0.0;  // off-cache weight refetch
  double input_xfer_us = 0.0;    // activations in (incl. host input at k=0)
  double output_xfer_us = 0.0;   // activations out (incl. logits at k=n-1)

  /// Per-inference service time.  Parameter streaming is double-buffered
  /// against compute on the real device, so the two overlap; activation
  /// transfers serialize with both.
  [[nodiscard]] double TotalUs() const {
    return std::max(compute_us, param_stream_us) + input_xfer_us +
           output_xfer_us;
  }
  [[nodiscard]] bool OnCache() const { return param_stream_us == 0.0; }
};

/// Computes the steady-state per-inference cost of every segment of a
/// package on the given device/link models.
[[nodiscard]] std::vector<StageCost> ProfilePackage(
    const deploy::PipelinePackage& package, const EdgeTpuModel& device = {},
    const UsbLinkModel& link = {});

}  // namespace respect::tpu
